"""Unit tests of the multi-lane serving fleet (PR 10).

Covers the fleet layers bottom-up: the latency histogram and merged
``ServerStats``, the batcher's enqueue-anchored flush deadline (the
drift regression), dynamic ``WorkerGroup`` budget accounting, the
``LaneRouter``'s least-loaded dispatch and typed admission shedding,
the multi-lane ``InferenceServer`` equivalence guarantees, and
``ServingFleet`` checkpoint hot-swap under live traffic.
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime.parallel import (
    WorkerGroup,
    active_worker_count,
    backend_thread_budget,
    worker_scope,
)
from repro.scenarios.registry import get_scenario, suite
from repro.serving import (
    AdmissionController,
    InferenceServer,
    LaneRouter,
    LatencyHistogram,
    MicroBatcher,
    Overloaded,
    PRIORITY_BATCHED,
    PRIORITY_SEQUENTIAL,
    RequestRejected,
    ServerStats,
    ServingFleet,
    fresh_bundle,
    generate_clips,
    run_admission_probe,
)
from repro.serving.registry import ModelRegistry


# ----------------------------------------------------------------------
# Latency histogram + merged stats
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_percentiles_track_numpy(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-5.0, sigma=1.5, size=4000)
        hist = LatencyHistogram()
        for sample in samples:
            hist.record(float(sample))
        assert hist.count == len(samples)
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            measured = hist.percentile(q)
            # Log-spaced bins are ~5% wide; allow a full bin either way.
            assert measured == pytest.approx(exact, rel=0.12)

    def test_empty_and_degenerate(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.as_dict()["count"] == 0
        for _ in range(10):
            hist.record(0.004)
        # All samples equal: every percentile reads back the sample.
        assert hist.percentile(50) == pytest.approx(0.004)
        assert hist.percentile(99) == pytest.approx(0.004)

    def test_merge_equals_union(self):
        rng = np.random.default_rng(4)
        a_samples = rng.random(500) * 0.01
        b_samples = rng.random(300) * 0.1
        a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for sample in a_samples:
            a.record(float(sample))
            union.record(float(sample))
        for sample in b_samples:
            b.record(float(sample))
            union.record(float(sample))
        a.merge(b)
        assert a.count == union.count
        assert a.percentile(95) == union.percentile(95)
        merged, direct = a.as_dict(), union.as_dict()
        # mean differs in the last ulp (summation order); everything
        # else — counts, extrema, percentiles — must be bit-identical.
        assert merged.pop("mean_ms") == pytest.approx(direct.pop("mean_ms"))
        assert merged == direct

    def test_out_of_range_clamps(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(1e4)
        assert hist.count == 2
        assert hist.max_s == 1e4

    def test_stats_merge_sums_counters(self):
        a, b = ServerStats(), ServerStats()
        a.submitted, b.submitted = 3, 5
        a.observe_batch(2, "size")
        b.observe_batch(2, "deadline")
        a.observe_queue_depth(4)
        b.observe_queue_depth(9)
        a.observe_latency(0.002)
        b.observe_latency(0.004)
        a.merge(b)
        assert a.submitted == 8
        assert a.batches == 2
        assert a.batch_size_hist == {2: 2}
        assert a.max_queue_depth == 9
        assert a.mean_queue_depth == pytest.approx(6.5)
        assert a.latency.count == 2
        snapshot = a.as_dict()
        assert snapshot["latency"]["count"] == 2
        assert snapshot["mean_queue_depth"] == pytest.approx(6.5)


# ----------------------------------------------------------------------
# Flush-deadline drift regression
# ----------------------------------------------------------------------
class TestDeadlineAnchoredAtEnqueue:
    def test_queue_wait_spends_the_delay_budget(self):
        """A request held behind a busy batch must flush on arrival +
        max_delay, not dequeue + max_delay (the drift bug)."""
        max_delay = 0.3
        exec_time = 0.4

        def slow_batch(payloads):
            time.sleep(exec_time)
            return payloads

        with MicroBatcher(slow_batch, max_batch_size=8,
                          max_delay_s=max_delay, max_queue=16) as batcher:
            first = batcher.submit("a")  # flushes at ~0.3, executes to ~0.7
            time.sleep(0.35)
            submitted = time.monotonic()
            second = batcher.submit("b")  # queued while the worker is busy
            second.result(timeout=5.0)
            waited = time.monotonic() - submitted
        first.result(timeout=1.0)
        # Enqueue-anchored deadline: b's deadline (0.65) expires before
        # the worker frees up (~0.7), so b flushes immediately on
        # dequeue -> ~0.35 queue wait + 0.4 execution ~= 0.75 s.  The
        # dequeue-anchored deadline would wait a further full max_delay
        # (~1.05 s).  0.95 splits the two with margin for CI noise.
        assert waited < 0.95, (
            f"flush deadline drifted: held {waited:.2f}s, expected ~0.75s")
        assert waited >= exec_time  # sanity: the batch really executed

    def test_expired_deadline_still_coalesces_backlog(self):
        """Draining an over-deadline batch must still coalesce whatever
        is queued — the fix may not degrade into size-1 batches."""
        release = threading.Event()
        first_started = threading.Event()

        def gated_batch(payloads):
            first_started.set()
            release.wait(timeout=5.0)
            return payloads

        with MicroBatcher(gated_batch, max_batch_size=4,
                          max_delay_s=0.005, max_queue=16) as batcher:
            head = batcher.submit(0)
            assert first_started.wait(timeout=2.0)
            backlog = [batcher.submit(i) for i in range(1, 9)]
            release.set()
            for future in [head] + backlog:
                future.result(timeout=5.0)
            snapshot = batcher.stats_snapshot()
        # Head flushed alone; the 8 backlogged requests (all far past
        # deadline by the time the worker frees up) must coalesce into
        # two full batches of 4, not eight singletons.
        assert snapshot["batch_size_hist"].get(4) == 2
        assert snapshot["batches"] == 3

    def test_in_flight_and_load_accounting(self):
        release = threading.Event()
        started = threading.Event()

        def gated_batch(payloads):
            started.set()
            release.wait(timeout=5.0)
            return payloads

        with MicroBatcher(gated_batch, max_batch_size=2,
                          max_delay_s=0.0, max_queue=8) as batcher:
            assert batcher.load == 0
            future = batcher.submit("x")
            assert started.wait(timeout=2.0)
            assert batcher.in_flight == 1
            assert batcher.load >= 1
            release.set()
            future.result(timeout=5.0)
        assert batcher.in_flight == 0


# ----------------------------------------------------------------------
# WorkerGroup dynamic budget accounting
# ----------------------------------------------------------------------
class TestWorkerGroup:
    def test_single_member_keeps_full_budget(self):
        group = WorkerGroup()
        assert active_worker_count() == 1
        with group.member():
            # Sole active member: no reason to scale kernels down.
            assert active_worker_count() == 1
        assert group.active == 0

    def test_concurrent_members_divide_budget(self):
        group = WorkerGroup()
        barrier = threading.Barrier(2)
        observed = []
        lock = threading.Lock()

        def busy_member():
            with group.member():
                barrier.wait(timeout=5.0)
                with lock:
                    observed.append(active_worker_count())
                barrier.wait(timeout=5.0)

        threads = [threading.Thread(target=busy_member) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert observed == [2, 2]
        assert group.active == 0

    def test_composes_with_static_worker_scope(self):
        group = WorkerGroup()
        with worker_scope(2):
            with group.member():
                # 2 static outer workers x 1 active member = 2.
                assert active_worker_count() == 2
                assert backend_thread_budget(8) == 4

    def test_lane_router_batches_run_inside_group(self):
        barrier = threading.Barrier(2)
        observed = []
        lock = threading.Lock()

        def make_run_batch(index):
            def run(payloads):
                barrier.wait(timeout=5.0)
                with lock:
                    observed.append(active_worker_count())
                barrier.wait(timeout=5.0)
                return payloads
            return run

        router = LaneRouter(make_run_batch, lanes=2, max_batch_size=1,
                            max_delay_s=0.0, max_queue=4)
        try:
            futures = [router.submit(i) for i in range(2)]
            for future in futures:
                future.result(timeout=5.0)
        finally:
            router.close()
        # Both lanes were executing concurrently (the barrier forces
        # it), so each saw two active siblings -> half the budget each.
        assert observed == [2, 2]


# ----------------------------------------------------------------------
# LaneRouter dispatch + admission control
# ----------------------------------------------------------------------
class TestLaneRouter:
    def _wedged_router(self, lanes, max_queue, admission=None):
        gate = threading.Event()

        def make_run_batch(index):
            def run(payloads):
                gate.wait(timeout=10.0)
                return payloads
            return run

        router = LaneRouter(make_run_batch, lanes=lanes,
                            max_batch_size=max_queue, max_delay_s=0.0,
                            max_queue=max_queue, admission=admission)
        return router, gate

    def test_least_loaded_dispatch_spreads(self):
        router, gate = self._wedged_router(lanes=3, max_queue=8)
        try:
            for i in range(6):
                router.submit(i)
            per_lane = {row["lane"]: row["submitted"]
                        for row in router.lane_stats()}
            # Wedged lanes only accumulate load, so least-loaded
            # dispatch must rotate across all three.
            assert set(per_lane) == {0, 1, 2}
            assert all(count == 2 for count in per_lane.values())
        finally:
            gate.set()
            router.close()

    def test_full_fleet_raises_request_rejected(self):
        router, gate = self._wedged_router(lanes=2, max_queue=2)
        try:
            accepted = 0
            with pytest.raises(RequestRejected, match="all 2 lanes full"):
                for i in range(32):
                    router.submit(i)
                    accepted += 1
            # Queues (2x2) plus at most one wedged batch per lane.
            assert 4 <= accepted <= 8
        finally:
            gate.set()
            router.close()

    def test_admission_sheds_sequential_only(self):
        admission = AdmissionController(shed_occupancy=0.25)
        router, gate = self._wedged_router(lanes=1, max_queue=8,
                                           admission=admission)
        try:
            # Push occupancy past the shed threshold with batched traffic.
            for i in range(4):
                router.submit(i, priority=PRIORITY_BATCHED)
            with pytest.raises(Overloaded):
                router.submit("seq", priority=PRIORITY_SEQUENTIAL)
            # Batched traffic is never admission-shed; it still enqueues.
            router.submit("batched", priority=PRIORITY_BATCHED)
            counters = admission.as_dict()
            assert counters["shed"] == 1
            assert counters["admitted"] == 5
        finally:
            gate.set()
            router.close()

    def test_overloaded_is_a_typed_rejection(self):
        assert issubclass(Overloaded, RequestRejected)
        with pytest.raises(ValueError):
            AdmissionController(shed_occupancy=0.0)
        with pytest.raises(ValueError, match="priority"):
            AdmissionController().admit("bulk", occupancy=0.0)

    def test_admission_probe_ordering_invariant(self):
        probe = run_admission_probe(lanes=2, max_queue=4)
        assert probe["admission_ordering_ok"]
        assert probe["shed_sequential"] > 0
        assert probe["shed_batched"] == 0
        assert probe["rejected_batched"] > 0
        assert probe["sheds_before_first_batched_rejection"] > 0
        assert probe["first_shed_index"] < probe["first_batched_rejection_index"]

    def test_router_stats_aggregate(self):
        router = LaneRouter(lambda index: (lambda payloads: payloads),
                            lanes=2, max_batch_size=4, max_delay_s=0.001,
                            max_queue=16)
        try:
            futures = [router.submit(i) for i in range(10)]
            for future in futures:
                future.result(timeout=5.0)
            snapshot = router.stats()
        finally:
            router.close()
        assert snapshot["lanes"] == 2
        assert snapshot["submitted"] == 10
        assert snapshot["completed"] == 10
        assert snapshot["latency"]["count"] == 10
        assert len(snapshot["per_lane"]) == 2


# ----------------------------------------------------------------------
# Multi-lane InferenceServer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ce_bundle():
    return fresh_bundle("snappix_s", num_classes=4, image_size=16,
                        num_frames=8, seed=0)


class TestMultiLaneServer:
    def test_lanes_match_sequential_labels(self, ce_bundle):
        clips = generate_clips(20, 8, 16, seed=5)
        with InferenceServer(ce_bundle, max_batch_size=4, max_delay_s=0.005,
                             lanes=2) as server:
            futures = server.submit_many(clips)
            labels = [future.result().label for future in futures]
            reference = [p.label for p in server.predict_sequential(clips)]
            stats = server.stats()
        assert labels == reference
        assert stats["lanes"] == 2
        assert stats["submitted"] == 20
        # Flat single-server stat keys survive the fleet aggregation.
        assert stats["completed"] == 20
        assert stats["latency"]["count"] >= 20
        assert sum(row["submitted"] for row in stats["per_lane"]) == 20
        assert stats["encoder"]["clips_encoded"] >= 20

    def test_stream_preserves_order_across_lanes(self, ce_bundle):
        clips = generate_clips(30, 8, 16, seed=6)
        with InferenceServer(ce_bundle, max_batch_size=4, max_delay_s=0.002,
                             lanes=3) as server:
            streamed = [p.label for p in server.stream(clips, window=8)]
            reference = [p.label for p in server.predict_sequential(clips)]
        assert streamed == reference

    def test_sequential_path_does_not_touch_lanes(self, ce_bundle):
        with InferenceServer(ce_bundle, max_batch_size=4, lanes=2) as server:
            server.predict_sequential(generate_clips(4, 8, 16, seed=7))
            stats = server.stats()
        assert stats["submitted"] == 0
        assert stats["batches"] == 0

    def test_admission_controller_plumbs_through(self, ce_bundle):
        admission = AdmissionController(shed_occupancy=0.5)
        with InferenceServer(ce_bundle, max_batch_size=4, lanes=2,
                             admission=admission) as server:
            assert server.admission is admission
            clip = generate_clips(1, 8, 16, seed=8)[0]
            assert server.predict(clip).label >= 0
            assert "admission" in server.stats()


# ----------------------------------------------------------------------
# ServingFleet hot-swap
# ----------------------------------------------------------------------
class TestServingFleetHotSwap:
    def test_swap_mid_load_drops_nothing(self, ce_bundle):
        new_bundle = fresh_bundle("snappix_s", num_classes=4, image_size=16,
                                  num_frames=8, seed=99)
        clips = list(generate_clips(12, 8, 16, seed=9))
        with InferenceServer(ce_bundle, max_batch_size=1) as reference:
            old_labels = [p.label for p in reference.predict_sequential(clips)]
        with InferenceServer(new_bundle, max_batch_size=1) as reference:
            new_labels = [p.label for p in reference.predict_sequential(clips)]

        registry = ModelRegistry()
        registry.register_bundle(ce_bundle)
        name = ce_bundle.name
        outcomes = [[] for _ in range(3)]
        errors = []
        start = threading.Barrier(4)

        def client(worker):
            try:
                start.wait(timeout=5.0)
                for round_index in range(4):
                    futures = [fleet.submit(name, clip) for clip in clips]
                    outcomes[worker].append(
                        [future.result(timeout=10.0).label
                         for future in futures])
            except BaseException as error:  # noqa: BLE001 — asserted below
                errors.append(error)

        with ServingFleet(registry=registry, lanes=2, max_batch_size=4,
                          max_delay_s=0.002, shed_occupancy=None) as fleet:
            threads = [threading.Thread(target=client, args=(worker,))
                       for worker in range(3)]
            for thread in threads:
                thread.start()
            start.wait(timeout=5.0)
            # Swap the checkpoint while the three clients hammer away.
            fleet.register(name, new_bundle)
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors, errors

            # Zero dropped/failed futures: every submitted request
            # resolved to a prediction...
            assert all(len(rounds) == 4 for rounds in outcomes)
            # ...and every label came from one of the two checkpoints
            # (in-flight old-model requests complete on the old model).
            for rounds in outcomes:
                for labels in rounds:
                    for index, label in enumerate(labels):
                        assert label in (old_labels[index], new_labels[index])

            # Post-swap, the fleet serves the new checkpoint: labels
            # match a cold server on the new bundle.
            post_swap = [fleet.predict(name, clip).label for clip in clips]
        assert post_swap == new_labels

    def test_register_before_traffic_is_a_plain_load(self, ce_bundle):
        fleet = ServingFleet(lanes=1, max_batch_size=4)
        try:
            fleet.register("fresh", ce_bundle)
            clip = generate_clips(1, 8, 16, seed=10)[0]
            assert fleet.predict("fresh", clip).label >= 0
            assert fleet.served_names == ["fresh"]
        finally:
            fleet.close()

    def test_fleet_stats_per_model(self, ce_bundle):
        registry = ModelRegistry()
        registry.register_bundle(ce_bundle)
        with ServingFleet(registry=registry, lanes=2,
                          max_batch_size=4) as fleet:
            clips = generate_clips(6, 8, 16, seed=11)
            for clip in clips:
                fleet.predict(ce_bundle.name, clip)
            stats = fleet.stats()
        assert set(stats) == {ce_bundle.name}
        assert stats[ce_bundle.name]["submitted"] == 6
        assert stats[ce_bundle.name]["lanes"] == 2


# ----------------------------------------------------------------------
# Scenario registry: serving fleet rows
# ----------------------------------------------------------------------
class TestServingScenarioRows:
    def test_multi_lane_storm_registered(self):
        scenario = get_scenario("multi_lane_storm")
        assert scenario.category == "serving"
        assert scenario.options == {"lanes": 4}
        assert (scenario, 4) in suite("quick", categories=["serving"])

    def test_quantized_row_registered(self):
        scenario = get_scenario("quantized_corrupt")
        assert scenario.options == {"quantized": True}
        faults = scenario.build_faults(0.25, seed=0)
        assert faults.corrupt_fraction == 0.25

    def test_options_default_empty(self):
        assert get_scenario("corrupt_payloads").options == {}
