"""Tests for the sensor defect layer (repro.hardware.defects)."""

import numpy as np
import pytest

from repro.ce import CEConfig, CodedExposureSensor, make_pattern
from repro.hardware import (
    DefectiveSensor,
    SensorDefectModel,
    SensorNoiseModel,
    healthy_defects,
    with_severity,
)


@pytest.fixture
def config():
    return CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)


@pytest.fixture
def pattern(rng):
    return make_pattern("random", 8, 4, rng=rng)


class TestSensorDefectModelValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            SensorDefectModel(dead_pixel_fraction=-0.1)
        with pytest.raises(ValueError):
            SensorDefectModel(hot_pixel_fraction=1.5)
        with pytest.raises(ValueError):
            SensorDefectModel(dead_pixel_fraction=0.6, hot_pixel_fraction=0.6)

    def test_magnitude_bounds(self):
        with pytest.raises(ValueError):
            SensorDefectModel(hot_pixel_level=-0.5)
        with pytest.raises(ValueError):
            SensorDefectModel(tile_gain_sigma=-0.1)
        with pytest.raises(ValueError):
            SensorDefectModel(column_offset_sigma=-0.1)
        with pytest.raises(ValueError):
            SensorDefectModel(dropped_slots=-1)
        with pytest.raises(ValueError):
            SensorDefectModel(slot_jitter=1.1)
        with pytest.raises(ValueError):
            SensorDefectModel(frame_rate_factor=0.0)

    def test_healthy_and_with_severity_helpers(self):
        healthy = healthy_defects(seed=3)
        assert not healthy.has_temporal_faults
        assert not healthy.has_readout_faults
        harsh = with_severity(healthy, dead_pixel_fraction=0.1)
        assert harsh.dead_pixel_fraction == 0.1
        assert harsh.seed == 3
        # The original is untouched (frozen dataclass + replace).
        assert healthy.dead_pixel_fraction == 0.0


class TestStructuralMaps:
    def test_pixel_masks_round_trip_and_disjoint(self):
        defects = SensorDefectModel(dead_pixel_fraction=0.1,
                                    hot_pixel_fraction=0.05, seed=11)
        dead, hot = defects.pixel_defect_masks(20, 20)
        assert dead.shape == hot.shape == (20, 20)
        assert dead.sum() == round(0.1 * 400)
        assert hot.sum() == round(0.05 * 400)
        assert not (dead & hot).any()
        # Bit-identical re-derivation from equal fields (cacheability).
        dead2, hot2 = SensorDefectModel(
            dead_pixel_fraction=0.1, hot_pixel_fraction=0.05,
            seed=11).pixel_defect_masks(20, 20)
        assert np.array_equal(dead, dead2)
        assert np.array_equal(hot, hot2)

    def test_substreams_are_independent(self):
        base = SensorDefectModel(dead_pixel_fraction=0.05,
                                 tile_gain_sigma=0.1, seed=5)
        config = CEConfig(num_slots=8, tile_size=4,
                          frame_height=16, frame_width=16)
        gains_before = base.tile_gain_map(config)
        # Raising the dead fraction must not reshuffle the tile gains.
        harsher = with_severity(base, dead_pixel_fraction=0.2)
        assert np.array_equal(gains_before, harsher.tile_gain_map(config))

    def test_tile_gain_map_bounds_and_structure(self, config):
        sigma = 0.2
        defects = SensorDefectModel(tile_gain_sigma=sigma, seed=2)
        gains = defects.tile_gain_map(config)
        assert gains.shape == (16, 16)
        assert (gains >= 0.0).all()
        # Constant within each tile.
        tiles = gains.reshape(4, 4, 4, 4).swapaxes(1, 2).reshape(16, 4, 4)
        for tile in tiles:
            assert np.ptp(tile) == 0.0
        # Centred on 1.0 with the requested spread (16 draws: loose check).
        unique = np.unique(gains)
        assert abs(unique.mean() - 1.0) < 4 * sigma
        assert (np.abs(unique - 1.0) < 6 * sigma).all()

    def test_zero_sigma_gain_is_identity(self, config):
        gains = SensorDefectModel(seed=0).tile_gain_map(config)
        assert np.array_equal(gains, np.ones((16, 16)))

    def test_column_offsets(self):
        offsets = SensorDefectModel(column_offset_sigma=0.1,
                                    seed=4).column_offsets(32)
        assert offsets.shape == (32,)
        assert np.abs(offsets).max() < 0.1 * 6

    def test_dropped_slot_indices_sorted_unique_clamped(self):
        defects = SensorDefectModel(dropped_slots=3, seed=9)
        picks = defects.dropped_slot_indices(8)
        assert picks.shape == (3,)
        assert len(set(picks.tolist())) == 3
        assert np.array_equal(picks, np.sort(picks))
        # More drops than slots: every slot is dropped, no error.
        assert len(SensorDefectModel(dropped_slots=10,
                                     seed=9).dropped_slot_indices(4)) == 4

    def test_slot_source_frames(self):
        # Matched rates + no jitter: identity gather.
        identity = SensorDefectModel(seed=0).slot_source_frames(8)
        assert np.array_equal(identity, np.arange(8))
        # Frame-rate mismatch: floor(t * factor), clamped to the clip.
        doubled = SensorDefectModel(frame_rate_factor=2.0,
                                    seed=0).slot_source_frames(8)
        assert np.array_equal(doubled, np.minimum(np.arange(8) * 2, 7))
        # Dropped slots gather nothing (-1 sentinel).
        dropped = SensorDefectModel(dropped_slots=2, seed=1)
        source = dropped.slot_source_frames(8)
        assert (source[dropped.dropped_slot_indices(8)] == -1).all()
        # Full jitter moves every slot by exactly one frame (post-clip).
        jittered = SensorDefectModel(slot_jitter=1.0,
                                     seed=3).slot_source_frames(8)
        assert (np.abs(jittered - np.arange(8)) <= 1).all()


class TestDefectiveSensorCapture:
    def test_identity_defects_match_clean_capture(self, config, pattern, rng):
        sensor = DefectiveSensor(config, pattern, healthy_defects())
        videos = rng.random((3, 8, 16, 16))
        assert np.array_equal(sensor.capture(videos),
                              sensor.capture_clean(videos))

    def test_dead_pixels_read_zero_hot_read_level(self, config, pattern, rng):
        defects = SensorDefectModel(dead_pixel_fraction=0.1,
                                    hot_pixel_fraction=0.1,
                                    hot_pixel_level=0.9, seed=6)
        sensor = DefectiveSensor(config, pattern, defects)
        videos = rng.random((2, 8, 16, 16)) * 0.5 + 0.25
        coded = sensor.capture(videos)
        dead, hot = defects.pixel_defect_masks(16, 16)
        assert (coded[..., dead] == 0.0).all()
        # Hot pixels read the configured level wherever the pixel saw
        # at least one exposure (zero-exposure pixels normalise to 0/1).
        counts = sensor.exposure_counts_map
        exposed_hot = hot & (counts > 0)
        assert np.allclose(coded[..., exposed_hot], 0.9)

    def test_dropped_slots_equal_zeroed_pattern_raw(self, config, rng):
        """A dropped strobe integrates like a pattern with that slot zeroed.

        The equivalence holds for RAW (un-normalised) charge: the defect
        path still normalises by the *believed* exposure counts, while a
        genuinely zeroed pattern normalises by the true (smaller) counts.
        """
        pattern = np.ones((8, 4, 4))
        defects = SensorDefectModel(dropped_slots=3, seed=12)
        sensor = DefectiveSensor(config, pattern, defects)
        videos = rng.random((2, 8, 16, 16))

        zeroed = pattern.copy()
        zeroed[defects.dropped_slot_indices(8)] = 0.0
        reference = CodedExposureSensor(config, zeroed)
        assert np.allclose(sensor.capture_raw(videos),
                           reference.capture_raw(videos))

    def test_gain_drift_scales_raw_capture(self, config, pattern, rng):
        defects = SensorDefectModel(tile_gain_sigma=0.2, seed=8)
        sensor = DefectiveSensor(config, pattern, defects)
        videos = rng.random((2, 8, 16, 16))
        clean_raw = CodedExposureSensor(config, pattern).capture_raw(videos)
        assert np.allclose(sensor.capture_raw(videos),
                           clean_raw * defects.tile_gain_map(config))

    def test_column_fpn_adds_per_column_offsets(self, config, pattern, rng):
        defects = SensorDefectModel(column_offset_sigma=0.1, seed=13)
        sensor = DefectiveSensor(config, pattern, defects)
        videos = rng.random((1, 8, 16, 16))
        clean_raw = CodedExposureSensor(config, pattern).capture_raw(videos)
        assert np.allclose(sensor.capture_raw(videos),
                           clean_raw + defects.column_offsets(16))

    def test_capture_is_deterministic(self, config, pattern, rng):
        defects = SensorDefectModel(dead_pixel_fraction=0.05,
                                    tile_gain_sigma=0.1,
                                    dropped_slots=1, seed=21)
        videos = rng.random((2, 8, 16, 16))
        first = DefectiveSensor(config, pattern, defects).capture(videos)
        second = DefectiveSensor(config, pattern, defects).capture(videos)
        assert np.array_equal(first, second)

    def test_hardware_sim_path_matches_operator(self, config, pattern, rng):
        defects = SensorDefectModel(dead_pixel_fraction=0.05,
                                    dropped_slots=1, seed=2)
        videos = rng.random((2, 8, 16, 16))
        operator = DefectiveSensor(config, pattern, defects)
        hardware = DefectiveSensor(config, pattern, defects,
                                   hardware_sim=True)
        assert np.allclose(operator.capture(videos),
                           hardware.capture(videos))

    def test_noise_composes_with_defects(self, config, pattern, rng):
        defects = SensorDefectModel(dead_pixel_fraction=0.1, seed=1)
        noise = SensorNoiseModel(seed=5)
        sensor = DefectiveSensor(config, pattern, defects, noise=noise)
        videos = rng.random((2, 8, 16, 16))
        first = sensor.capture(videos)
        # Dead pixels override whatever the noise drew.
        dead, _ = defects.pixel_defect_masks(16, 16)
        assert (first[..., dead] == 0.0).all()
        # Session stream: a second capture sees fresh noise draws.
        second = sensor.capture(videos)
        assert not np.array_equal(first, second)
        # But the first capture of a fresh sensor is reproducible.
        again = DefectiveSensor(config, pattern, defects,
                                noise=SensorNoiseModel(seed=5)).capture(videos)
        assert np.array_equal(first, again)

    def test_single_clip_capture_shape(self, config, pattern, rng):
        sensor = DefectiveSensor(config, pattern,
                                 SensorDefectModel(dropped_slots=1, seed=0))
        coded = sensor.capture(rng.random((8, 16, 16)))
        assert coded.shape == (16, 16)
