"""Tests for CE pattern analysis and serialisation (repro.ce.analysis / .io)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce import (
    CEConfig,
    PatternBundle,
    code_diversity,
    compare_patterns,
    dead_pixel_fraction,
    load_pattern,
    long_exposure_pattern,
    make_pattern,
    mean_pairwise_hamming,
    pattern_to_text,
    per_pixel_exposure_counts,
    per_slot_density,
    random_pattern,
    save_pattern,
    sparse_random_pattern,
    summarize_pattern,
    temporal_coverage,
)


@pytest.fixture
def random_tile_pattern(rng):
    return random_pattern(8, 4, probability=0.5, rng=rng)


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
class TestPatternAnalysis:
    def test_per_slot_density_long_exposure(self):
        pattern = long_exposure_pattern(8, 4)
        assert np.allclose(per_slot_density(pattern), 1.0)

    def test_per_pixel_counts_sparse_random(self, rng):
        pattern = sparse_random_pattern(16, 8, rng=rng)
        counts = per_pixel_exposure_counts(pattern)
        # Each pixel is exposed exactly once across the T slots.
        assert np.all(counts == 1)

    def test_temporal_coverage_full_for_long_exposure(self):
        assert temporal_coverage(long_exposure_pattern(8, 4)) == 1.0

    def test_dead_pixel_fraction_zero_for_long_exposure(self):
        assert dead_pixel_fraction(long_exposure_pattern(8, 4)) == 0.0

    def test_hamming_zero_when_all_codes_identical(self):
        assert mean_pairwise_hamming(long_exposure_pattern(8, 4)) == 0.0

    def test_hamming_positive_for_random_pattern(self, random_tile_pattern):
        assert mean_pairwise_hamming(random_tile_pattern) > 0.0

    def test_code_diversity_bounds(self, random_tile_pattern):
        diversity = code_diversity(random_tile_pattern)
        assert 0.0 < diversity <= 1.0
        assert code_diversity(long_exposure_pattern(8, 4)) == pytest.approx(1 / 16)

    def test_single_pixel_tile_hamming_is_zero(self):
        pattern = np.ones((4, 1, 1))
        assert mean_pairwise_hamming(pattern) == 0.0

    def test_summary_fields(self, random_tile_pattern):
        summary = summarize_pattern(random_tile_pattern)
        as_dict = summary.as_dict()
        assert as_dict["num_slots"] == 8
        assert as_dict["tile_height"] == 4 and as_dict["tile_width"] == 4
        assert 0.0 < as_dict["exposure_density"] < 1.0
        assert as_dict["min_slot_density"] <= as_dict["max_slot_density"]
        assert 0.0 <= as_dict["dead_pixel_fraction"] <= 1.0

    def test_summary_rejects_invalid_pattern(self):
        with pytest.raises(ValueError):
            summarize_pattern(np.zeros((4, 4)))  # not 3-D
        with pytest.raises(ValueError):
            summarize_pattern(np.full((4, 4, 4), 0.5))  # not binary

    def test_pattern_to_text_dimensions(self, random_tile_pattern):
        text = pattern_to_text(random_tile_pattern)
        blocks = text.split("\n\n")
        assert len(blocks) == 8
        first_rows = blocks[0].splitlines()
        assert first_rows[0] == "slot 0:"
        assert all(len(row) == 4 for row in first_rows[1:])
        exposed = sum(line.count("#") for line in text.splitlines())
        assert exposed == int(random_tile_pattern.sum())

    def test_compare_patterns_rows(self, rng):
        rows = compare_patterns({
            "long": long_exposure_pattern(8, 4),
            "random": random_pattern(8, 4, rng=rng),
        })
        assert {row["pattern"] for row in rows} == {"long", "random"}
        by_name = {row["pattern"]: row for row in rows}
        assert by_name["long"]["mean_pairwise_hamming"] == 0.0
        assert by_name["random"]["mean_pairwise_hamming"] > 0.0

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_density_matches_mean_of_slot_densities(self, num_slots, tile):
        rng = np.random.default_rng(num_slots * 100 + tile)
        pattern = random_pattern(num_slots, tile, probability=0.6, rng=rng)
        summary = summarize_pattern(pattern)
        assert summary.exposure_density == pytest.approx(
            float(np.mean(per_slot_density(pattern))))


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
class TestPatternIO:
    @pytest.fixture
    def bundle(self, rng):
        config = CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)
        pattern = make_pattern("random", 8, 4, rng=rng)
        return PatternBundle(pattern=pattern, config=config,
                             metadata={"source": "unit-test", "epochs": 3})

    def test_bundle_validates_pattern_against_config(self, rng):
        config = CEConfig(num_slots=16, tile_size=4, frame_height=16, frame_width=16)
        with pytest.raises(ValueError):
            PatternBundle(pattern=make_pattern("random", 8, 4, rng=rng), config=config)

    def test_json_roundtrip(self, bundle, tmp_path):
        path = save_pattern(bundle, tmp_path / "pattern.json")
        loaded = load_pattern(path)
        assert np.array_equal(loaded.pattern, bundle.pattern)
        assert loaded.config == bundle.config
        assert loaded.metadata["source"] == "unit-test"

    def test_npz_roundtrip(self, bundle, tmp_path):
        path = save_pattern(bundle, tmp_path / "pattern.npz")
        loaded = load_pattern(path)
        assert np.array_equal(loaded.pattern, bundle.pattern)
        assert loaded.config.num_slots == 8
        assert loaded.metadata["epochs"] == 3

    def test_dict_roundtrip(self, bundle):
        restored = PatternBundle.from_dict(bundle.as_dict())
        assert np.array_equal(restored.pattern, bundle.pattern)
        assert restored.config == bundle.config

    def test_from_dict_rejects_unknown_version(self, bundle):
        payload = bundle.as_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            PatternBundle.from_dict(payload)

    def test_unsupported_extension(self, bundle, tmp_path):
        with pytest.raises(ValueError):
            save_pattern(bundle, tmp_path / "pattern.txt")
        existing = tmp_path / "pattern.txt"
        existing.write_text("not a pattern")
        with pytest.raises(ValueError):
            load_pattern(existing)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pattern(tmp_path / "does_not_exist.json")

    def test_loaded_pattern_reproduces_sensor_output(self, bundle, tmp_path, rng):
        from repro.ce import CodedExposureSensor

        path = save_pattern(bundle, tmp_path / "pattern.json")
        loaded = load_pattern(path)
        videos = rng.random((2, 8, 16, 16))
        original = CodedExposureSensor(bundle.config, bundle.pattern).capture(videos)
        restored = CodedExposureSensor(loaded.config, loaded.pattern).capture(videos)
        assert np.allclose(original, restored)
