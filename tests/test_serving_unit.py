"""Tests for the ``repro.serving`` subsystem.

Covers the :class:`MicroBatcher` scheduler (flush-on-size,
flush-on-deadline, backpressure rejection, concurrent-submitter
equivalence, idle shutdown), the warm :class:`ModelRegistry` and
servable checkpoint round-trip, the :class:`InferenceServer` request
path (batched == sequential argmax, ordering, streaming, hardware
capture mode, telemetry), and the ``BatchEncoder`` streamed-vs-batched
dtype regression the serving path relies on.
"""

import threading
import time

import numpy as np
import pytest

from repro.ce import CEConfig, CodedExposureSensor, make_pattern
from repro.core import PipelineConfig, SnapPixSystem
from repro.hardware import StackedCESensor
from repro.runtime import BatchEncoder
from repro.serving import (
    BatcherClosed,
    InferenceServer,
    InvalidRequest,
    MicroBatcher,
    ModelRegistry,
    RequestFailure,
    RequestRejected,
    ServerStats,
    TrafficFaults,
    fresh_bundle,
    generate_clips,
    load_servable,
    poison_clips,
    run_fault_injection,
    run_load_test,
    save_servable,
)
from repro.serving.server import Prediction


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flush_on_size(self):
        batches = []

        def run_batch(payloads):
            batches.append(list(payloads))
            return [p * 2 for p in payloads]

        # A long deadline means only the size limit can flush full batches.
        with MicroBatcher(run_batch, max_batch_size=4, max_delay_s=5.0,
                          max_queue=64) as batcher:
            futures = batcher.submit_many(list(range(8)))
            results = [f.result(timeout=10) for f in futures]
        assert results == [p * 2 for p in range(8)]
        assert [len(b) for b in batches] == [4, 4]
        assert batcher.stats.flushed_on_size == 2
        assert batcher.stats.flushed_on_deadline == 0

    def test_flush_on_deadline(self):
        def run_batch(payloads):
            return list(payloads)

        # One lone request, batch room for 32: only the deadline fires.
        with MicroBatcher(run_batch, max_batch_size=32, max_delay_s=0.05,
                          max_queue=8) as batcher:
            start = time.monotonic()
            future = batcher.submit("lonely")
            assert future.result(timeout=10) == "lonely"
            waited = time.monotonic() - start
        assert batcher.stats.batches == 1
        assert batcher.stats.flushed_on_deadline == 1
        assert batcher.stats.batch_size_hist == {1: 1}
        # The flush must not have waited for a full batch that never comes.
        assert waited < 5.0

    def test_backpressure_rejection(self):
        release = threading.Event()

        def run_batch(payloads):
            release.wait(timeout=10)
            return list(payloads)

        batcher = MicroBatcher(run_batch, max_batch_size=1, max_delay_s=0.0,
                               max_queue=2)
        try:
            # The worker blocks inside the first batch, so the bounded
            # queue (2) must fill and reject within a few submits —
            # without blocking the caller or growing memory.
            accepted = []
            with pytest.raises(RequestRejected):
                for value in range(16):
                    accepted.append((value, batcher.submit(value)))
            assert batcher.stats.rejected >= 1
            assert len(accepted) <= 3  # first in-flight + 2 queued
        finally:
            release.set()
            batcher.close()
        # Every accepted request still completed with its own result.
        assert [future.result(timeout=10) for _, future in accepted] == \
            [value for value, _ in accepted]
        assert batcher.stats.completed == len(accepted)

    def test_concurrent_submitters_match_sequential(self):
        def run_batch(payloads):
            # Deterministic, batch-invariant work.
            return [p ** 2 + 1 for p in payloads]

        expected = {value: run_batch([value])[0] for value in range(64)}
        results = {}
        errors = []

        with MicroBatcher(run_batch, max_batch_size=8, max_delay_s=0.005,
                          max_queue=256) as batcher:

            def submitter(offset):
                try:
                    futures = [(value, batcher.submit(value))
                               for value in range(offset, offset + 16)]
                    for value, future in futures:
                        results[value] = future.result(timeout=10)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=submitter, args=(offset,))
                       for offset in range(0, 64, 16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        assert results == expected
        assert batcher.stats.submitted == 64
        assert batcher.stats.completed == 64

    def test_idle_shutdown_without_requests(self):
        batcher = MicroBatcher(lambda payloads: payloads, max_batch_size=4)
        batcher.close(timeout=10)
        assert batcher.closed
        assert batcher.stats.batches == 0
        with pytest.raises(BatcherClosed):
            batcher.submit(1)
        # close() is idempotent.
        batcher.close()

    def test_drain_on_close(self):
        def run_batch(payloads):
            time.sleep(0.01)
            return list(payloads)

        batcher = MicroBatcher(run_batch, max_batch_size=4, max_delay_s=0.5,
                               max_queue=64)
        futures = batcher.submit_many(list(range(10)))
        batcher.close(timeout=30)
        assert [f.result(timeout=1) for f in futures] == list(range(10))

    def test_cancelled_future_does_not_kill_worker(self):
        release = threading.Event()

        def run_batch(payloads):
            release.wait(timeout=10)
            return list(payloads)

        batcher = MicroBatcher(run_batch, max_batch_size=1, max_delay_s=0.0,
                               max_queue=8)
        try:
            blocker = batcher.submit("blocker")
            queued = batcher.submit("queued")
            assert queued.cancel()  # still queued -> cancellable
            release.set()
            assert blocker.result(timeout=10) == "blocker"
            # The worker must survive the cancelled future and keep
            # serving subsequent requests.
            assert batcher.submit("after").result(timeout=10) == "after"
        finally:
            release.set()
            batcher.close()
        assert batcher.stats.cancelled == 1

    def test_close_resolves_request_racing_shutdown(self):
        # A request enqueued around close() must still resolve: close()
        # drains the queue, so no accepted future is stranded.
        batcher = MicroBatcher(lambda payloads: list(payloads),
                               max_batch_size=4, max_delay_s=0.0)
        futures = batcher.submit_many(list(range(6)))
        batcher.close(timeout=30)
        assert [f.result(timeout=1) for f in futures] == list(range(6))

    def test_run_batch_error_propagates_to_futures(self):
        def run_batch(payloads):
            raise RuntimeError("kaboom")

        with MicroBatcher(run_batch, max_batch_size=2,
                          max_delay_s=0.0) as batcher:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="kaboom"):
                future.result(timeout=10)
        assert batcher.stats.failed == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda p: p, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda p: p, max_delay_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda p: p, max_queue=0)


class TestServerStats:
    def test_observe_and_snapshot(self):
        stats = ServerStats()
        stats.observe_batch(4, "size")
        stats.observe_batch(2, "deadline")
        stats.observe_batch(2, "close")
        stats.observe_queue_depth(7)
        snapshot = stats.as_dict()
        assert snapshot["batches"] == 3
        assert snapshot["batch_size_hist"] == {2: 2, 4: 1}
        assert snapshot["mean_batch_size"] == pytest.approx(8 / 3)
        assert snapshot["max_queue_depth"] == 7
        with pytest.raises(ValueError):
            stats.observe_batch(1, "mystery")


# ----------------------------------------------------------------------
# Registry / servable checkpoints
# ----------------------------------------------------------------------
class TestServableBundles:
    def test_fresh_bundle_ce_has_sensor(self):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8)
        assert bundle.input_kind == "ce"
        assert bundle.sensor is not None
        assert bundle.model.dtype == np.float32

    def test_fresh_bundle_video_model(self):
        bundle = fresh_bundle("c3d", image_size=16, num_frames=8)
        assert bundle.input_kind == "video"
        assert bundle.sensor is None

    def test_save_load_roundtrip(self, tmp_path):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8,
                              seed=3)
        path = save_servable(tmp_path / "model", bundle.model, bundle.spec,
                             sensor=bundle.sensor, metadata={"note": "hi"})
        assert path.suffix == ".npz"
        loaded = load_servable(path)
        assert loaded.spec == bundle.spec
        assert loaded.metadata["note"] == "hi"
        assert np.array_equal(loaded.sensor.tile_pattern,
                              bundle.sensor.tile_pattern)
        for (name, p1), (_, p2) in zip(loaded.model.named_parameters(),
                                       bundle.model.named_parameters()):
            assert np.array_equal(p1.data, p2.data), name

    def test_save_ce_model_requires_sensor(self, tmp_path):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8)
        with pytest.raises(ValueError, match="sensor"):
            save_servable(tmp_path / "m", bundle.model, bundle.spec)

    def test_load_rejects_bare_checkpoint(self, tmp_path):
        from repro.nn import save_checkpoint
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8)
        save_checkpoint(bundle.model, tmp_path / "bare.npz")
        with pytest.raises(ValueError, match="serving"):
            load_servable(tmp_path / "bare.npz")

    def test_registry_scan_and_warm_get(self, tmp_path):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8)
        save_servable(tmp_path / "snappix_s", bundle.model, bundle.spec,
                      sensor=bundle.sensor)
        # A bare checkpoint in the same directory must be skipped.
        from repro.nn import save_checkpoint
        save_checkpoint(bundle.model, tmp_path / "bare.npz")

        registry = ModelRegistry(root=tmp_path)
        assert registry.names() == ["snappix_s"]
        assert "snappix_s" in registry
        assert registry.loaded_names() == []
        first = registry.get("snappix_s")
        # Warm: the same resident object comes back, no reload.
        assert registry.get("snappix_s") is first
        assert registry.loaded_names() == ["snappix_s"]
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_registry_concurrent_get_loads_once(self, tmp_path):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8)
        save_servable(tmp_path / "snappix_s", bundle.model, bundle.spec,
                      sensor=bundle.sensor)
        registry = ModelRegistry(root=tmp_path)
        results = []

        def getter():
            results.append(registry.get("snappix_s"))

        threads = [threading.Thread(target=getter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(b is results[0] for b in results)

    def test_registry_scan_skips_corrupt_checkpoint(self, tmp_path):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8)
        save_servable(tmp_path / "snappix_s", bundle.model, bundle.spec,
                      sensor=bundle.sensor)
        # A truncated/garbage .npz (e.g. a killed export) must be
        # skipped, not abort the scan for the healthy checkpoints.
        (tmp_path / "truncated.npz").write_bytes(b"PK\x03\x04garbage")
        (tmp_path / "noise.npz").write_bytes(b"not a zip at all")
        registry = ModelRegistry(root=tmp_path)
        assert registry.names() == ["snappix_s"]

    def test_registry_warm_preloads(self, tmp_path):
        for seed in (0, 1):
            bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8,
                                  seed=seed, name=f"m{seed}")
            save_servable(tmp_path / f"m{seed}", bundle.model, bundle.spec,
                          sensor=bundle.sensor, name=f"m{seed}")
        registry = ModelRegistry(root=tmp_path)
        assert registry.warm() == ["m0", "m1"]
        assert registry.loaded_names() == ["m0", "m1"]

    def test_system_export_servable(self, tmp_path):
        config = PipelineConfig(frame_size=16, num_slots=8, tile_size=8,
                                pattern="random", model_variant="tiny",
                                pattern_epochs=1, pretrain_epochs=1,
                                pretrain_clips=4, finetune_epochs=1, seed=0)
        system = SnapPixSystem(config)
        system.prepare_pattern()
        system.pretrain()
        path = system.export_servable(tmp_path / "export")
        bundle = load_servable(path)
        assert bundle.spec["name"] == "snappix_tiny"
        assert bundle.metadata["pretrained"] is True
        assert np.array_equal(bundle.sensor.tile_pattern, system.pattern)
        with InferenceServer(bundle, max_batch_size=4) as server:
            prediction = server.predict(np.random.default_rng(0).random(
                (8, 16, 16)))
        assert 0 <= prediction.label < bundle.spec["num_classes"]

    def test_export_requires_pattern(self, tmp_path):
        system = SnapPixSystem(PipelineConfig(frame_size=16, num_slots=8))
        with pytest.raises(RuntimeError):
            system.export_servable(tmp_path / "nope")

    def test_export_rejects_mismatched_external_model(self, tmp_path):
        from repro.models import build_model
        config = PipelineConfig(frame_size=16, num_slots=8, tile_size=8,
                                pattern="random", model_variant="tiny",
                                pattern_epochs=1, pretrain_clips=4, seed=0)
        system = SnapPixSystem(config)
        system.prepare_pattern()
        # Wrong head size (and geometry) for the system's serving spec:
        # must fail at export, not at load time in another process.
        wrong = build_model("snappix_tiny", num_classes=3, image_size=16,
                            seed=0)
        with pytest.raises(ValueError, match="serving spec"):
            system.export_servable(tmp_path / "bad", model=wrong)


# ----------------------------------------------------------------------
# InferenceServer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ce_bundle():
    return fresh_bundle("snappix_s", num_classes=6, image_size=16,
                        num_frames=8, seed=0)


class TestInferenceServer:
    def test_batched_equals_sequential(self, ce_bundle):
        clips = generate_clips(13, 8, 16, seed=7)
        with InferenceServer(ce_bundle, max_batch_size=8,
                             max_delay_s=0.02) as server:
            futures = server.submit_many(clips)
            batched = [f.result(timeout=30) for f in futures]
            sequential = server.predict_sequential(clips)
        assert [p.label for p in batched] == [p.label for p in sequential]
        for a, b in zip(batched, sequential):
            np.testing.assert_allclose(a.logits, b.logits, rtol=1e-4,
                                       atol=1e-5)

    def test_stream_preserves_order(self, ce_bundle):
        clips = generate_clips(9, 8, 16, seed=3)
        with InferenceServer(ce_bundle, max_batch_size=4,
                             max_delay_s=0.01) as server:
            streamed = list(server.stream(clips))
            sequential = server.predict_sequential(clips)
        assert [p.label for p in streamed] == [p.label for p in sequential]

    def test_stream_longer_than_queue_bound_never_rejects(self, ce_bundle):
        # The submission window must keep arbitrarily long streams
        # under the backpressure limit instead of aborting mid-stream.
        clips = generate_clips(30, 8, 16, seed=13)
        with InferenceServer(ce_bundle, max_batch_size=4, max_delay_s=0.005,
                             max_queue=8) as server:
            streamed = list(server.stream(clips))
            sequential = server.predict_sequential(clips)
        assert [p.label for p in streamed] == [p.label for p in sequential]
        assert server.stats()["rejected"] == 0

    def test_stream_rejects_bad_window(self, ce_bundle):
        with InferenceServer(ce_bundle, max_batch_size=2) as server:
            with pytest.raises(ValueError, match="window"):
                list(server.stream(generate_clips(2, 8, 16), window=0))

    def test_video_model_path(self):
        bundle = fresh_bundle("c3d", num_classes=4, image_size=16,
                              num_frames=8, seed=1)
        clips = generate_clips(5, 8, 16, seed=2)
        with InferenceServer(bundle, max_batch_size=4,
                             max_delay_s=0.01) as server:
            batched = [f.result(timeout=60)
                       for f in server.submit_many(clips)]
            sequential = server.predict_sequential(clips)
        assert [p.label for p in batched] == [p.label for p in sequential]
        assert server.stats()["capture_mode"] == "none"

    def test_hardware_capture_mode_matches_operator(self, ce_bundle):
        clips = generate_clips(4, 8, 16, seed=5)
        with InferenceServer(ce_bundle, max_batch_size=4, max_delay_s=0.01,
                             capture_mode="hardware") as hw_server:
            hw = [f.result(timeout=30) for f in hw_server.submit_many(clips)]
        with InferenceServer(ce_bundle, max_batch_size=4,
                             max_delay_s=0.01) as op_server:
            op = [f.result(timeout=30) for f in op_server.submit_many(clips)]
        assert [p.label for p in hw] == [p.label for p in op]
        for a, b in zip(hw, op):
            np.testing.assert_allclose(a.logits, b.logits, rtol=1e-4,
                                       atol=1e-5)

    def test_invalid_clip_shape_raises_at_submit(self, ce_bundle):
        with InferenceServer(ce_bundle, max_batch_size=2) as server:
            with pytest.raises(ValueError, match="clip shape"):
                server.submit(np.zeros((3, 16, 16)))

    def test_invalid_capture_mode(self, ce_bundle):
        with pytest.raises(ValueError, match="capture_mode"):
            InferenceServer(ce_bundle, capture_mode="quantum")

    def test_stats_and_load_test(self, ce_bundle):
        clips = generate_clips(12, 8, 16, seed=11)
        with InferenceServer(ce_bundle, max_batch_size=6, max_delay_s=0.02,
                             max_queue=64) as server:
            row, predictions = run_load_test(server, clips)
            stats = server.stats()
        assert row["num_requests"] == 12
        assert len(predictions) == 12
        assert row["inference_per_second"] > 0
        assert row["latency_p95_ms"] >= row["latency_p50_ms"] > 0
        assert stats["submitted"] == 12
        assert stats["completed"] == 12
        assert stats["rejected"] == 0
        assert sum(size * count for size, count
                   in stats["batch_size_hist"].items()) == 12
        assert stats["encoder"]["clips_encoded"] >= 12


# ----------------------------------------------------------------------
# StackedCESensor batched capture (serving "hardware" front-end)
# ----------------------------------------------------------------------
class TestCaptureBatch:
    def _setup(self, rng):
        config = CEConfig(num_slots=8, tile_size=4, frame_height=16,
                          frame_width=16)
        pattern = make_pattern("random", 8, 4, rng=rng)
        return config, pattern

    def test_matches_sequential_captures_bitwise(self, rng):
        config, pattern = self._setup(rng)
        videos = rng.random((3, 8, 16, 16))
        batched = StackedCESensor(config, pattern).capture_batch(videos)
        singles = np.stack([StackedCESensor(config, pattern).capture(video)
                            for video in videos])
        assert np.array_equal(batched, singles)

    def test_counters_scale_with_batch(self, rng):
        config, pattern = self._setup(rng)
        videos = rng.random((3, 8, 16, 16))
        batch_sensor = StackedCESensor(config, pattern)
        batch_sensor.capture_batch(videos)
        single_sensor = StackedCESensor(config, pattern)
        for video in videos:
            single_sensor.capture(video)
        assert batch_sensor.capture_stats() == single_sensor.capture_stats()

    def test_rejects_bad_shapes_and_negative_light(self, rng):
        config, pattern = self._setup(rng)
        sensor = StackedCESensor(config, pattern)
        with pytest.raises(ValueError):
            sensor.capture_batch(rng.random((8, 16, 16)))
        with pytest.raises(ValueError):
            sensor.capture_batch(-rng.random((2, 8, 16, 16)))
        empty = sensor.capture_batch(np.zeros((0, 8, 16, 16)))
        assert empty.shape == (0, 16, 16)


# ----------------------------------------------------------------------
# BatchEncoder stream/batch dtype regression (serving encode path)
# ----------------------------------------------------------------------
class TestEncodeStreamDtypeRegression:
    def _encoder(self, rng, dtype=None):
        config = CEConfig(num_slots=8, tile_size=4, frame_height=16,
                          frame_width=16)
        sensor = CodedExposureSensor(config,
                                     make_pattern("random", 8, 4, rng=rng))
        return BatchEncoder(sensor, batch_size=3, dtype=dtype)

    @pytest.mark.parametrize("dtype", [None, np.float32])
    def test_mixed_dtype_stream_matches_per_clip_encode(self, rng, dtype):
        encoder = self._encoder(rng, dtype)
        clips = [rng.random((8, 16, 16)),
                 rng.random((8, 16, 16)).astype(np.float32),
                 rng.integers(0, 256, (8, 16, 16), dtype=np.uint8),
                 rng.random((8, 16, 16)),
                 rng.integers(0, 256, (8, 16, 16), dtype=np.uint8)]
        streamed = list(encoder.encode_stream(iter(clips)))
        singles = [encoder.encode(clip) for clip in clips]
        assert len(streamed) == len(clips)
        for coded_stream, coded_single in zip(streamed, singles):
            assert coded_stream.dtype == coded_single.dtype
            assert np.array_equal(coded_stream, coded_single)

    @pytest.mark.parametrize("dtype", [None, np.float32])
    def test_uniform_stream_matches_batched_encode(self, rng, dtype):
        encoder = self._encoder(rng, dtype)
        clips = rng.random((7, 8, 16, 16))
        streamed = np.stack(list(encoder.encode_stream(iter(clips))))
        batched = encoder.encode(clips)
        assert np.array_equal(streamed, batched)

    def test_stream_rejects_bad_rank(self, rng):
        encoder = self._encoder(rng)
        with pytest.raises(ValueError):
            list(encoder.encode_stream([rng.random((16, 16))]))


# ----------------------------------------------------------------------
# Fault injection: poisoned requests fail alone, the batch survives
# ----------------------------------------------------------------------
class TestFaultIsolation:
    def test_poisoned_request_fails_typed_while_batchmates_succeed(
            self, ce_bundle):
        """The acceptance invariant: a NaN clip coalesced into a micro-batch
        gets a typed per-request error; every valid clip in the SAME batch
        still returns its correct label; the server keeps serving after."""
        clips = generate_clips(8, 8, 16, seed=3)
        poisoned = np.array(clips)
        poisoned[2].reshape(-1)[::5] = np.nan
        poisoned[5].reshape(-1)[-1] = np.inf
        with InferenceServer(ce_bundle, max_batch_size=8,
                             max_delay_s=5.0) as server:
            reference = server.predict_sequential(
                [clips[i] for i in (0, 1, 3, 4, 6, 7)])
            # max_batch_size == number of requests and a long deadline:
            # all eight coalesce into ONE batch.
            futures = server.submit_many(list(poisoned))
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=30))
                except Exception as error:  # noqa: BLE001
                    outcomes.append(error)
            stats = server.stats()
            # Poisoned slots fail with the typed error...
            assert isinstance(outcomes[2], InvalidRequest)
            assert isinstance(outcomes[5], InvalidRequest)
            # ...while every valid batch-mate completes correctly.
            valid = [outcomes[i] for i in (0, 1, 3, 4, 6, 7)]
            assert all(isinstance(o, Prediction) for o in valid)
            assert [o.label for o in valid] == [r.label for r in reference]
            assert stats["request_failures"] == 2
            # The server still serves after the poisoned batch.
            probe = server.predict(clips[0])
            assert isinstance(probe, Prediction)

    def test_predict_sequential_raises_on_poisoned_clip(self, ce_bundle):
        clip = generate_clips(1, 8, 16, seed=4)[0]
        clip.reshape(-1)[0] = np.nan
        with InferenceServer(ce_bundle) as server:
            with pytest.raises(InvalidRequest):
                server.predict_sequential([clip])

    def test_negative_light_rejected_for_ce_bundle(self, ce_bundle):
        clip = generate_clips(1, 8, 16, seed=5)[0] - 2.0
        with InferenceServer(ce_bundle, max_delay_s=0.01) as server:
            with pytest.raises(InvalidRequest):
                server.submit(clip).result(timeout=30)

    def test_request_failure_sentinel_validates(self):
        failure = RequestFailure(InvalidRequest("bad"))
        assert isinstance(failure.error, InvalidRequest)
        assert "InvalidRequest" in repr(failure)
        with pytest.raises(TypeError):
            RequestFailure("not an exception")


class TestTrafficFaults:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficFaults(corrupt_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficFaults(corrupt_fraction=0.6, negative_fraction=0.6)
        with pytest.raises(ValueError):
            TrafficFaults(burst_size=-1)
        with pytest.raises(ValueError):
            TrafficFaults(slow_client_delay_s=-0.1)

    def test_poison_clips_is_deterministic(self):
        clips = generate_clips(12, 8, 16, seed=0)
        faults = TrafficFaults(corrupt_fraction=0.25, negative_fraction=0.25,
                               seed=9)
        first, kinds_first = poison_clips(clips, faults)
        second, kinds_second = poison_clips(clips, faults)
        assert kinds_first == kinds_second
        for a, b in zip(first, second):
            assert np.array_equal(a, b, equal_nan=True)
        assert kinds_first.count("corrupt") == 3
        assert kinds_first.count("negative") == 3

    def test_poison_kinds_match_content(self):
        clips = generate_clips(8, 8, 16, seed=1)
        faults = TrafficFaults(corrupt_fraction=0.25, negative_fraction=0.25,
                               seed=2)
        poisoned, kinds = poison_clips(clips, faults)
        for clip, kind in zip(poisoned, kinds):
            if kind == "corrupt":
                assert not np.isfinite(clip).all()
            elif kind == "negative":
                assert (clip < 0).any()
            else:
                assert np.isfinite(clip).all()
                assert (clip >= 0).all()

    def test_run_fault_injection_invariants(self, ce_bundle):
        clips = generate_clips(12, 8, 16, seed=6)
        faults = TrafficFaults(corrupt_fraction=0.25, negative_fraction=0.25,
                               burst_size=4, burst_pause_s=0.001,
                               slow_client_fraction=0.25,
                               slow_client_delay_s=0.001, seed=6)
        with InferenceServer(ce_bundle, max_batch_size=4,
                             max_delay_s=0.01) as server:
            outcome = run_fault_injection(server, clips, faults)
        assert outcome["num_requests"] == 12
        assert outcome["num_poisoned"] == 6
        assert outcome["typed_errors"] == 6
        assert outcome["untyped_errors"] == 0
        assert outcome["errors_all_typed"]
        assert outcome["valid_labels_match"]
        assert outcome["served_after_faults"]
        assert outcome["valid_completed"] == 6
