"""Tests for tile statistics, zero-mean encoding, and decorrelation pattern learning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce import (
    CEConfig,
    DecorrelationPatternLearner,
    coded_pixel_correlation,
    differentiable_correlation_loss,
    extract_tiles,
    learn_decorrelated_pattern,
    long_exposure_pattern,
    mean_absolute_offdiagonal,
    mean_squared_offdiagonal,
    pearson_correlation_matrix,
    random_pattern,
    short_exposure_pattern,
    sparse_random_pattern,
    straight_through_binarize,
    video_batch_to_tiles,
    zero_mean_contrast_encode,
)
from repro.nn import Parameter, Tensor


def make_correlated_videos(num_clips=12, slots=8, size=16, seed=0):
    """Smooth, temporally-correlated synthetic clips (natural-video-like)."""
    rng = np.random.default_rng(seed)
    clips = []
    for _ in range(num_clips):
        base = rng.random((size // 4, size // 4))
        base = np.kron(base, np.ones((4, 4)))  # spatially smooth
        frames = []
        shift = rng.integers(0, 3)
        for t in range(slots):
            frame = np.roll(base, shift * t, axis=1)
            frame = frame + 0.05 * rng.random((size, size))
            frames.append(frame)
        clips.append(np.stack(frames))
    return np.stack(clips)


class TestTileStatistics:
    def test_extract_tiles_shape(self, rng):
        images = rng.random((3, 16, 16))
        tiles = extract_tiles(images, 4)
        assert tiles.shape == (3 * 16, 16)

    def test_extract_tiles_content(self):
        image = np.arange(16, dtype=float).reshape(4, 4)
        tiles = extract_tiles(image[None], 2)
        assert np.allclose(tiles[0], [0, 1, 4, 5])  # top-left tile, row-major

    def test_extract_tiles_bad_size(self, rng):
        with pytest.raises(ValueError):
            extract_tiles(rng.random((2, 10, 10)), 4)

    def test_zero_mean_encoding(self, rng):
        tiles = rng.random((50, 16)) + 5.0
        encoded = zero_mean_contrast_encode(tiles)
        assert abs(encoded.mean()) < 1e-10

    def test_zero_mean_with_given_mean(self):
        tiles = np.full((4, 4), 2.0)
        encoded = zero_mean_contrast_encode(tiles, dataset_mean=1.5)
        assert np.allclose(encoded, 0.5)

    def test_pearson_identity_diagonal(self, rng):
        samples = rng.random((100, 8))
        corr = pearson_correlation_matrix(samples)
        assert np.allclose(np.diag(corr), 1.0)
        assert np.all(corr <= 1.0) and np.all(corr >= -1.0)

    def test_pearson_perfectly_correlated(self, rng):
        base = rng.random(200)
        samples = np.stack([base, 2 * base + 1], axis=1)
        corr = pearson_correlation_matrix(samples)
        assert np.isclose(corr[0, 1], 1.0, atol=1e-6)

    def test_pearson_anticorrelated(self, rng):
        base = rng.random(200)
        samples = np.stack([base, -base], axis=1)
        corr = pearson_correlation_matrix(samples)
        assert np.isclose(corr[0, 1], -1.0, atol=1e-6)

    def test_pearson_independent_near_zero(self, rng):
        samples = rng.standard_normal((5000, 2))
        corr = pearson_correlation_matrix(samples)
        assert abs(corr[0, 1]) < 0.1

    def test_pearson_needs_two_samples(self):
        with pytest.raises(ValueError):
            pearson_correlation_matrix(np.ones((1, 4)))

    def test_offdiagonal_metrics(self):
        corr = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert np.isclose(mean_squared_offdiagonal(corr), 0.25)
        assert np.isclose(mean_absolute_offdiagonal(corr), 0.5)
        assert mean_squared_offdiagonal(np.eye(1)) == 0.0

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_correlation_matrix_symmetry(self, pixels):
        rng = np.random.default_rng(pixels)
        samples = rng.random((64, pixels))
        corr = pearson_correlation_matrix(samples)
        assert np.allclose(corr, corr.T, atol=1e-10)


class TestStraightThrough:
    def test_forward_is_binary(self):
        probs = Tensor(np.array([0.2, 0.6, 0.5, 0.9]), requires_grad=True)
        hard = straight_through_binarize(probs)
        assert np.allclose(hard.data, [0.0, 1.0, 0.0, 1.0])

    def test_gradient_passes_through(self):
        logits = Parameter(np.array([0.3, -0.4]))
        probs = logits.sigmoid()
        hard = straight_through_binarize(probs)
        (hard * Tensor(np.array([2.0, 3.0]))).sum().backward()
        # Gradient reaches the logits despite the hard threshold.
        assert logits.grad is not None
        assert np.all(np.abs(logits.grad) > 0)


class TestDifferentiableCorrelationLoss:
    def test_matches_numpy_reference(self, rng):
        samples = rng.random((64, 6))
        loss = differentiable_correlation_loss(Tensor(samples))
        reference = mean_squared_offdiagonal(pearson_correlation_matrix(samples))
        assert np.isclose(loss.data, reference, rtol=1e-2, atol=1e-3)

    def test_zero_for_uncorrelated_orthogonal(self):
        # Two orthogonal sinusoids are (empirically) uncorrelated.
        t = np.linspace(0, 2 * np.pi, 400, endpoint=False)
        samples = np.stack([np.sin(t), np.cos(t)], axis=1)
        loss = differentiable_correlation_loss(Tensor(samples))
        assert loss.data < 1e-3

    def test_gradient_flows(self, rng):
        x = Tensor(rng.random((32, 4)), requires_grad=True)
        differentiable_correlation_loss(x).backward()
        assert x.grad is not None
        assert x.grad.shape == (32, 4)


class TestVideoBatchToTiles:
    def test_shape(self, rng):
        videos = rng.random((3, 8, 16, 16))
        tiles = video_batch_to_tiles(videos, 4)
        assert tiles.shape == (3 * 16, 8, 16)

    def test_consistency_with_coded_exposure(self, rng):
        """Applying a tile pattern to tile samples == full CE then tiling."""
        from repro.ce import coded_exposure, expand_tile_pattern
        videos = rng.random((2, 4, 8, 8))
        pattern = random_pattern(4, 4, rng=rng)
        tiles = video_batch_to_tiles(videos, 4)  # (S, T, P)
        coded_tiles = np.einsum("stp,tp->sp", tiles,
                                pattern.reshape(4, 16))
        full = coded_exposure(videos, expand_tile_pattern(pattern, 8, 8))
        coded_tiles_ref = extract_tiles(full, 4)
        assert np.allclose(np.sort(coded_tiles.ravel()),
                           np.sort(coded_tiles_ref.ravel()))

    def test_bad_shape_raises(self, rng):
        with pytest.raises(ValueError):
            video_batch_to_tiles(rng.random((8, 16, 16)), 4)


class TestPatternLearning:
    def _config(self):
        return CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)

    def test_training_reduces_loss(self):
        videos = make_correlated_videos()
        config = self._config()
        learner = DecorrelationPatternLearner(config, lr=0.05, seed=0)
        losses = [learner.training_step(videos) for _ in range(30)]
        assert losses[-1] < losses[0]

    def test_learned_pattern_is_valid(self):
        videos = make_correlated_videos()
        config = self._config()
        result = learn_decorrelated_pattern(videos, config, epochs=3, batch_size=6)
        pattern = result.tile_pattern
        assert pattern.shape == (8, 4, 4)
        assert set(np.unique(pattern)).issubset({0.0, 1.0})
        assert pattern.sum() > 0  # no collapse

    def test_decorrelated_beats_long_and_short_exposure(self):
        """Core claim of Sec. III: the learned pattern decorrelates coded pixels
        better than the naive long/short exposure baselines."""
        videos = make_correlated_videos(num_clips=16)
        config = self._config()
        result = learn_decorrelated_pattern(videos, config, epochs=4, batch_size=8)

        def corr_of(pattern):
            _, mean_abs, _ = coded_pixel_correlation(videos, pattern, config.tile_size)
            return mean_abs

        learned = corr_of(result.tile_pattern)
        long_corr = corr_of(long_exposure_pattern(8, 4))
        short_corr = corr_of(short_exposure_pattern(8, 4, period=4))
        assert learned < long_corr
        assert learned < short_corr

    def test_correlation_history_recorded(self):
        videos = make_correlated_videos(num_clips=8)
        result = learn_decorrelated_pattern(videos, self._config(), epochs=2, batch_size=4)
        assert len(result.loss_history) == len(result.correlation_history)
        assert len(result.loss_history) > 0
        assert np.isfinite(result.final_loss)

    def test_empty_batches_raises(self):
        learner = DecorrelationPatternLearner(self._config())
        with pytest.raises(ValueError):
            learner.fit([], epochs=1)

    def test_measure_correlation_collapsed_pattern(self):
        learner = DecorrelationPatternLearner(self._config(), seed=0)
        learner.logits.data[...] = -100.0  # force all-closed pattern
        videos = make_correlated_videos(num_clips=4)
        assert learner.measure_correlation(videos) == 1.0


class TestPatternCorrelationOrdering:
    def test_long_exposure_most_correlated(self):
        """Fig. 6 legend ordering: long/short exposure yield higher coded-pixel
        correlation than random/sparse-random on natural-like video."""
        videos = make_correlated_videos(num_clips=16)
        tile = 4

        def corr_of(pattern):
            _, mean_abs, _ = coded_pixel_correlation(videos, pattern, tile)
            return mean_abs

        rng = np.random.default_rng(3)
        long_corr = corr_of(long_exposure_pattern(8, tile))
        rand_corr = corr_of(random_pattern(8, tile, rng=rng))
        sparse_corr = corr_of(sparse_random_pattern(8, tile, rng=rng))
        assert rand_corr < long_corr
        assert sparse_corr < long_corr
