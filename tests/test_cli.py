"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.ce import load_pattern
from repro.core import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["energy"])
        assert args.frame_size == 112
        assert args.num_slots == 16

    def test_sweep_choices(self):
        args = build_parser().parse_args(["sweep", "tile"])
        assert args.name == "tile"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "nonexistent"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--smoke"])
        assert args.smoke
        assert args.capture == "operator"
        assert args.max_delay_ms == 5.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--capture", "quantum"])


class TestCommands:
    def test_energy_command(self, capsys):
        assert main(["energy", "--frame-size", "112", "--num-slots", "16"]) == 0
        output = capsys.readouterr().out
        assert "readout_reduction : 16" in output
        assert "long_range_saving" in output

    def test_hardware_command(self, capsys):
        assert main(["hardware", "--tile-size", "8"]) == 0
        output = capsys.readouterr().out
        assert "ce_logic_area_um2" in output
        assert "coded_frame_rate_hz" in output

    def test_sweep_command_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "tile.csv"
        assert main(["sweep", "tile", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        output = capsys.readouterr().out
        assert "tile_size" in output

    def test_correlation_command(self, capsys):
        assert main(["correlation", "--frame-size", "16", "--num-slots", "8",
                     "--tile-size", "4", "--clips", "8", "--epochs", "2"]) == 0
        output = capsys.readouterr().out
        assert "decorrelated" in output
        assert "long_exposure" in output

    def test_pattern_command_saves_bundle(self, tmp_path, capsys):
        save_path = tmp_path / "pattern.json"
        assert main(["pattern", "--frame-size", "16", "--num-slots", "8",
                     "--tile-size", "4", "--clips", "8", "--epochs", "2",
                     "--save", str(save_path), "--show"]) == 0
        output = capsys.readouterr().out
        assert "exposure_density" in output
        assert "slot 0:" in output
        bundle = load_pattern(save_path)
        assert bundle.pattern.shape == (8, 4, 4)
        assert bundle.metadata["epochs"] == 2

    def test_pipeline_command_fast(self, capsys):
        assert main(["pipeline", "--task", "ar", "--dataset", "ssv2",
                     "--frame-size", "16", "--num-slots", "8",
                     "--no-pretrain", "--epochs", "2"]) == 0
        output = capsys.readouterr().out
        assert "test_accuracy" in output
        assert "pattern_correlation" in output

    def test_serve_checkpoint_and_models_conflict(self, capsys):
        assert main(["serve", "--checkpoint", "x.npz",
                     "--models", "snappix_s"]) == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def test_serve_smoke_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "serving_bench.json"
        assert main(["serve", "--smoke", "--out", str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "inference_per_second" in output
        assert "labels_match_sequential" in output
        import json
        payload = json.loads(out_path.read_text())
        assert payload["rows"]
        assert all(row["labels_match_sequential"]
                   for row in payload["rows"])
