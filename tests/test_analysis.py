"""Tests for the design-space sweeps, trade-off analysis, and report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    TradeoffPoint,
    build_tradeoff_points,
    edge_energy_per_clip,
    energy_saving_summary,
    format_markdown_table,
    format_paper_comparison,
    format_text_table,
    pareto_front,
    read_csv,
    sweep_digital_codec_quality,
    sweep_exposure_density,
    sweep_exposure_slots,
    sweep_tile_size,
    write_csv,
)


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
class TestSweeps:
    def test_exposure_slot_sweep_monotone_savings(self):
        rows = sweep_exposure_slots((4, 8, 16))
        assert [row["num_slots"] for row in rows] == [4.0, 8.0, 16.0]
        reductions = [row["readout_reduction"] for row in rows]
        assert reductions == sorted(reductions)
        long_savings = [row["long_range_saving"] for row in rows]
        assert long_savings == sorted(long_savings)

    def test_exposure_slot_sweep_with_correlation(self):
        rows = sweep_exposure_slots((4,), frame_size=16, tile_size=4,
                                    measure_correlation=True, num_clips=8)
        assert "decorrelated_pattern_correlation" in rows[0]
        assert 0.0 <= rows[0]["decorrelated_pattern_correlation"] <= 1.0

    def test_exposure_slot_sweep_validation(self):
        with pytest.raises(ValueError):
            sweep_exposure_slots((0, 8))

    def test_tile_size_sweep_reproduces_paper_crossover(self):
        rows = sweep_tile_size((8, 14))
        by_tile = {row["tile_size"]: row for row in rows}
        # Paper Sec. V: at N=8 the wire bundle fits, at N=14 it exceeds the APS.
        assert by_tile[8.0]["broadcast_exceeds_pixel"] == 0.0
        assert by_tile[14.0]["broadcast_exceeds_pixel"] == 1.0
        assert by_tile[8.0]["logic_fits_under_pixel"] == 1.0

    def test_tile_size_sweep_wire_area_quadratic(self):
        rows = sweep_tile_size((4, 8, 16))
        areas = [row["broadcast_wire_area_um2"] for row in rows]
        assert areas[1] / areas[0] == pytest.approx(4.0, rel=1e-6)
        assert areas[2] / areas[1] == pytest.approx(4.0, rel=1e-6)

    def test_tile_size_sweep_validation(self):
        with pytest.raises(ValueError):
            sweep_tile_size((0,))

    def test_exposure_density_sweep(self):
        rows = sweep_exposure_density((0.25, 0.5, 1.0), num_slots=8, tile_size=4,
                                      frame_size=16, num_clips=8)
        assert len(rows) == 3
        by_density = {row["exposure_density"]: row for row in rows}
        # Full exposure (the LONG EXPOSURE limit) is the most correlated.
        assert by_density[1.0]["correlation"] >= by_density[0.25]["correlation"] - 1e-6
        for row in rows:
            assert 0.0 <= row["correlation"] <= 1.0

    def test_exposure_density_sweep_validation(self):
        with pytest.raises(ValueError):
            sweep_exposure_density((0.0,), num_slots=4, tile_size=4, frame_size=8,
                                   num_clips=4)

    def test_digital_codec_sweep(self):
        rows = sweep_digital_codec_quality((25, 75), frame_size=16, num_slots=8,
                                           num_frames_measured=2)
        assert len(rows) == 2
        for row in rows:
            assert row["measured_compression_ratio"] > 1.0
            # In-sensor CE always wins on total edge energy.
            assert row["ce_saving_factor"] > 1.0
        # Lower quality compresses harder.
        assert rows[0]["measured_compression_ratio"] >= rows[1]["measured_compression_ratio"]


# ----------------------------------------------------------------------
# Trade-off analysis
# ----------------------------------------------------------------------
class TestTradeoff:
    def test_edge_energy_ce_below_video(self):
        coded = edge_energy_per_clip(112, 112, 16, coded=True)
        video = edge_energy_per_clip(112, 112, 16, coded=False)
        assert coded < video

    def test_build_points_assigns_energy_by_input_kind(self):
        accuracies = {"snappix_s": 0.7, "c3d": 0.6}
        inputs = {"snappix_s": "ce", "c3d": "video"}
        points = build_tradeoff_points(accuracies, inputs, 112, 112, 16)
        by_system = {point.system: point for point in points}
        assert by_system["snappix_s"].energy_j < by_system["c3d"].energy_j
        assert by_system["snappix_s"].as_dict()["accuracy"] == 0.7

    def test_build_points_missing_input_kind(self):
        with pytest.raises(KeyError):
            build_tradeoff_points({"x": 0.5}, {}, 32, 32, 8)

    def test_pareto_front_removes_dominated(self):
        points = [
            TradeoffPoint("good", accuracy=0.8, energy_j=1.0),
            TradeoffPoint("dominated", accuracy=0.7, energy_j=2.0),
            TradeoffPoint("frugal", accuracy=0.5, energy_j=0.5),
        ]
        front = {point.system for point in pareto_front(points)}
        assert front == {"good", "frugal"}

    def test_pareto_front_sorted_by_energy(self):
        points = [
            TradeoffPoint("a", accuracy=0.9, energy_j=3.0),
            TradeoffPoint("b", accuracy=0.5, energy_j=1.0),
        ]
        front = pareto_front(points)
        assert [point.system for point in front] == ["b", "a"]

    def test_energy_saving_summary_matches_paper_shape(self):
        summary = energy_saving_summary(112, 112, 16)
        assert summary["readout_reduction"] == pytest.approx(16.0)
        assert summary["transmission_reduction"] == pytest.approx(16.0)
        assert 7.0 < summary["short_range_saving"] < 8.5
        assert 15.0 < summary["long_range_saving"] <= 16.0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
class TestReport:
    ROWS = [
        {"system": "snappix", "accuracy": 0.75, "energy_j": 1.2e-5},
        {"system": "c3d", "accuracy": 0.62, "energy_j": 5.3e-5},
    ]

    def test_text_table_contains_all_cells(self):
        table = format_text_table(self.ROWS)
        lines = table.splitlines()
        assert len(lines) == 4  # header + separator + 2 rows
        assert "snappix" in table and "c3d" in table
        assert "accuracy" in lines[0]

    def test_text_table_empty(self):
        assert format_text_table([]) == "(no rows)"

    def test_markdown_table_structure(self):
        table = format_markdown_table(self.ROWS, columns=["system", "accuracy"])
        lines = table.splitlines()
        assert lines[0] == "| system | accuracy |"
        assert lines[1].startswith("|---")
        assert len(lines) == 4

    def test_markdown_missing_column_blank(self):
        table = format_markdown_table([{"a": 1}], columns=["a", "b"])
        assert table.splitlines()[-1] == "| 1 |  |"

    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(self.ROWS, tmp_path / "rows.csv")
        restored = read_csv(path)
        assert len(restored) == 2
        assert restored[0]["system"] == "snappix"
        assert restored[0]["accuracy"] == pytest.approx(0.75)
        assert restored[1]["energy_j"] == pytest.approx(5.3e-5)

    def test_paper_comparison_includes_note_column_when_present(self):
        entries = [{"quantity": "readout", "paper": "16x", "measured": 16.0,
                    "note": "analytic"}]
        table = format_paper_comparison(entries)
        assert "note" in table.splitlines()[0]
        assert format_paper_comparison([]) == "(no entries)"
