"""Tests for the CE pattern-streaming / read-out timing models (repro.hardware.timing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import constants
from repro.hardware import (
    LOADS_PER_SLOT,
    FrameRateModel,
    PatternStreamTiming,
    ReadoutTiming,
    pattern_streaming_energy_per_pixel,
)


class TestPatternStreamTiming:
    def test_defaults_match_paper_constants(self):
        stream = PatternStreamTiming()
        assert stream.clock_hz == constants.PATTERN_CLOCK_HZ
        assert stream.bits_per_load == 64
        assert LOADS_PER_SLOT == 2

    def test_load_time_at_20mhz(self):
        stream = PatternStreamTiming(tile_size=8, clock_hz=20e6)
        # 64 bits at 20 MHz = 3.2 us per load.
        assert stream.load_time_s == pytest.approx(3.2e-6)
        assert stream.pattern_time_per_slot_s == pytest.approx(6.4e-6)

    def test_per_frame_time_scales_with_slots(self):
        short = PatternStreamTiming(num_slots=8)
        long = PatternStreamTiming(num_slots=16)
        assert long.pattern_time_per_coded_frame_s == pytest.approx(
            2 * short.pattern_time_per_coded_frame_s)

    def test_streaming_overhead_fraction_bounds(self):
        stream = PatternStreamTiming(tile_size=8)
        assert stream.streaming_overhead_fraction(1.0) < 1e-4
        assert stream.streaming_overhead_fraction(1e-9) == 1.0
        with pytest.raises(ValueError):
            stream.streaming_overhead_fraction(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternStreamTiming(tile_size=0)
        with pytest.raises(ValueError):
            PatternStreamTiming(num_slots=0)
        with pytest.raises(ValueError):
            PatternStreamTiming(clock_hz=0.0)

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=25, deadline=None)
    def test_bits_per_load_is_square_of_tile(self, tile_size):
        assert PatternStreamTiming(tile_size=tile_size).bits_per_load == tile_size ** 2


class TestReadoutTiming:
    def test_frame_readout_time(self):
        readout = ReadoutTiming(frame_height=112, frame_width=112, row_time_s=10e-6)
        assert readout.frame_readout_time_s == pytest.approx(1.12e-3)

    def test_ce_reads_one_frame_per_clip(self):
        readout = ReadoutTiming(frame_height=64, frame_width=64)
        assert readout.clip_readout_time_s(16, coded=True) == pytest.approx(
            readout.frame_readout_time_s)
        assert readout.clip_readout_time_s(16, coded=False) == pytest.approx(
            16 * readout.frame_readout_time_s)

    def test_readout_time_reduction_equals_t(self):
        readout = ReadoutTiming()
        for num_frames in (1, 8, 16):
            assert readout.readout_time_reduction(num_frames) == pytest.approx(
                float(num_frames))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutTiming(frame_height=0)
        with pytest.raises(ValueError):
            ReadoutTiming(row_time_s=0.0)
        with pytest.raises(ValueError):
            ReadoutTiming().clip_readout_time_s(0, coded=True)


class TestFrameRateModel:
    @pytest.fixture
    def model(self):
        return FrameRateModel(stream=PatternStreamTiming(tile_size=8, num_slots=16),
                              readout=ReadoutTiming(112, 112),
                              slot_exposure_s=1e-3)

    def test_slot_time_includes_streaming(self, model):
        assert model.slot_time_s > model.slot_exposure_s
        assert model.slot_time_s == pytest.approx(
            model.slot_exposure_s + model.stream.pattern_time_per_slot_s)

    def test_coded_frame_rate_consistent(self, model):
        assert model.coded_frame_rate_hz == pytest.approx(1.0 / model.coded_frame_time_s)
        assert model.equivalent_video_frame_rate_hz == pytest.approx(
            16 * model.coded_frame_rate_hz)

    def test_ce_clip_faster_than_conventional_clip(self, model):
        # CE pays one read-out instead of T, so covering the same footage
        # takes less total time despite the pattern-streaming overhead.
        assert model.coded_frame_time_s < model.conventional_clip_time_s()

    def test_report_keys_and_values(self, model):
        report = model.report()
        assert report["readout_time_reduction"] == pytest.approx(16.0)
        assert 0.0 < report["streaming_overhead_fraction"] < 0.05
        assert report["coded_frame_rate_hz"] > 0
        assert set(report) >= {"slot_time_s", "coded_frame_time_s",
                               "conventional_clip_time_s", "bits_per_load"}

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameRateModel(stream=PatternStreamTiming(), readout=ReadoutTiming(),
                           slot_exposure_s=0.0)


class TestStreamingEnergy:
    def test_matches_paper_constant(self):
        assert pattern_streaming_energy_per_pixel(16) == pytest.approx(16 * 9e-12)

    def test_scales_linearly_with_slots(self):
        assert pattern_streaming_energy_per_pixel(32) == pytest.approx(
            2 * pattern_streaming_energy_per_pixel(16))

    def test_validation(self):
        with pytest.raises(ValueError):
            pattern_streaming_energy_per_pixel(0)
        with pytest.raises(ValueError):
            pattern_streaming_energy_per_pixel(4, energy_per_pixel_per_slot=-1.0)
