"""Concurrency tests for the process-safe parallel runtime.

Covers the :class:`~repro.runtime.artifacts.ArtifactStore` guarantees
(atomic writes, corruption-tolerant reads, lock-guarded state, LRU
bounds), the parallel :class:`~repro.runtime.runner.PipelineRunner`
schedule (bit-identical to serial), the parallel sweep / batch-encoding
paths, and the seeded-by-default RNG fixes.
"""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.analysis import (
    sweep_digital_codec_quality,
    sweep_exposure_density,
    sweep_exposure_slots,
    sweep_tile_size,
)
from repro.ce import CEConfig, CodedExposureSensor, make_pattern, random_pattern
from repro.core import PipelineConfig
from repro.pretrain import random_tile_masking
from repro.runtime import (
    ArtifactStore,
    BatchEncoder,
    FunctionStage,
    ParallelSweepExecutor,
    PipelineRunner,
    build_pipeline_stages,
    fingerprint,
    resolve_workers,
)


def tiny_config(**overrides):
    defaults = dict(frame_size=16, num_slots=8, tile_size=8, model_variant="tiny",
                    pattern_epochs=1, pretrain_epochs=1, finetune_epochs=2,
                    pretrain_clips=12, train_clips_per_class=3,
                    test_clips_per_class=2, batch_size=6)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def run_threads(count, target):
    """Run ``target(thread_index)`` on ``count`` threads; re-raise failures."""
    errors = []

    def wrapped(index):
        try:
            target(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
# ArtifactStore: write races, corruption tolerance, tmp hygiene, LRU
# ----------------------------------------------------------------------
class TestArtifactStoreConcurrency:
    def test_same_key_writers_never_publish_torn_pickles(self, tmp_path):
        """8 threads hammering one key: every published pickle is complete."""
        store = ArtifactStore(tmp_path / "cache")
        payloads = {i: {"writer": i, "data": np.full(20_000, i, dtype=np.int64)}
                    for i in range(8)}
        valid = {fingerprint(p) for p in payloads.values()}

        def hammer(index):
            for _ in range(20):
                store.put("shared", payloads[index])
                seen = store.get("shared")
                assert seen is not None
                assert fingerprint(seen) in valid

        run_threads(8, hammer)
        assert not list((tmp_path / "cache").glob("*.tmp"))
        files = list((tmp_path / "cache").glob("*.pkl"))
        assert len(files) == 1
        with open(files[0], "rb") as handle:
            assert fingerprint(pickle.load(handle)) in valid
        assert store.stats.corrupt_drops == 0

    def test_put_get_evict_hammer_small_keyspace(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        keys = [f"key-{i}" for i in range(4)]

        def hammer(index):
            rng = np.random.default_rng(index)
            for step in range(40):
                key = keys[int(rng.integers(len(keys)))]
                op = step % 3
                if op == 0:
                    store.put(key, np.arange(512) + index)
                elif op == 1:
                    value = store.get(key)
                    assert value is None or isinstance(value, np.ndarray)
                else:
                    store.evict(key)

        run_threads(8, hammer)
        # Whatever survived must load cleanly and round-trip.
        for path in (tmp_path / "cache").glob("*.pkl"):
            with open(path, "rb") as handle:
                value = pickle.load(handle)
            assert isinstance(value, np.ndarray) and value.shape == (512,)
        assert store.stats.corrupt_drops == 0

    def test_truncated_pickle_is_a_miss_then_recovers(self, tmp_path):
        writer = ArtifactStore(tmp_path / "cache")
        writer.put("k", {"x": np.arange(64)})
        path = tmp_path / "cache" / "k.pkl"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # crashed-writer analog

        reader = ArtifactStore(tmp_path / "cache")
        assert reader.get("k", "fallback") == "fallback"
        assert reader.stats.misses == 1
        assert reader.stats.corrupt_drops == 1
        assert not path.exists()  # evicted, not left to fail forever
        # Recompute-and-put recovers the key.
        reader.put("k", {"x": np.arange(64)})
        np.testing.assert_array_equal(reader.get("k")["x"], np.arange(64))

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        (tmp_path / "cache").mkdir(parents=True, exist_ok=True)
        (tmp_path / "cache" / "junk.pkl").write_bytes(b"\x00not a pickle")
        assert store.get("junk") is None
        assert store.stats.corrupt_drops == 1

    def test_keys_and_clear_handle_leftover_tmp_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("real", 1)
        # Leftovers from both the legacy and the current tmp naming.
        (tmp_path / "cache" / "stale.tmp").write_bytes(b"x")
        (tmp_path / "cache" / "real.pkl.123.deadbeef.tmp").write_bytes(b"y")
        assert store.keys() == ["real"]
        assert len(store) == 1
        store.clear()
        assert store.keys() == []
        assert not any((tmp_path / "cache").iterdir())

    def test_concurrent_evicts_do_not_raise(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        for round_index in range(5):
            store.put("k", round_index)
            run_threads(8, lambda _i: store.evict("k"))
            assert not store.contains("k")

    def test_lru_bound_spills_to_disk(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache", max_memory_items=2)
        for index in range(4):
            store.put(f"k{index}", index)
        assert store.stats.memory_evictions == 2
        # Every key still resolves: evicted entries reload from disk
        # (each reload re-enters the bounded memory level, displacing
        # the current LRU entry, so all four walk through the disk).
        assert [store.get(f"k{i}") for i in range(4)] == [0, 1, 2, 3]
        assert store.stats.disk_loads == 4

    def test_lru_bound_memory_only_store(self):
        store = ArtifactStore(max_memory_items=1)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("b") == 2
        assert store.get("a") is None  # no disk level to reload from
        assert store.stats.memory_evictions == 1

    def test_get_refreshes_lru_recency(self):
        store = ArtifactStore(max_memory_items=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # touch: "b" is now the LRU entry
        store.put("c", 3)
        assert store.get("a") == 1
        assert store.get("b") is None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_memory_items=0)


# ----------------------------------------------------------------------
# Parallel PipelineRunner: bit-identical to serial
# ----------------------------------------------------------------------
class TestParallelRunner:
    def diamond_stages(self):
        return [
            FunctionStage("base", lambda: np.arange(200.0), config={"n": 200}),
            FunctionStage("left", lambda base: base * 2, inputs=("base",)),
            FunctionStage("right", lambda base: base + 1, inputs=("base",)),
            FunctionStage("merge", lambda left, right: left @ right,
                          inputs=("left", "right")),
        ]

    def test_diamond_parallel_matches_serial(self):
        serial = PipelineRunner(ArtifactStore()).run(self.diamond_stages())
        parallel = PipelineRunner(ArtifactStore(), workers=3).run(
            self.diamond_stages())
        assert parallel.keys == serial.keys
        assert set(parallel.artifacts) == set(serial.artifacts)
        for name in serial.artifacts:
            assert fingerprint(parallel.artifacts[name]) == fingerprint(
                serial.artifacts[name])
        # Execution log is reported in topological order either way.
        assert ([ex.stage for ex in parallel.executions]
                == [ex.stage for ex in serial.executions])

    def test_full_pipeline_parallel_bit_identical(self):
        """Acceptance check: parallel == serial, byte for byte.

        The one exception is ``inference_per_second`` inside the finetune
        artifact — a wall-clock throughput *measurement* that differs
        even between two serial runs — which is compared for presence
        only.
        """
        config = tiny_config(use_pretraining=True)
        serial = PipelineRunner(ArtifactStore()).run(
            build_pipeline_stages(config, task="ar"))
        parallel = PipelineRunner(ArtifactStore(), workers=4).run(
            build_pipeline_stages(config, task="ar"))
        assert parallel.keys == serial.keys
        for name, artifact in serial.artifacts.items():
            other = parallel.artifacts[name]
            if name == "finetune":
                artifact, other = dict(artifact), dict(other)
                assert np.isfinite(other.pop("inference_per_second"))
                artifact.pop("inference_per_second")
            assert fingerprint(other) == fingerprint(artifact), name
        assert set(parallel.cache_misses) == set(serial.cache_misses)

    def test_parallel_run_seeds_cache_for_serial_run(self, tmp_path):
        config = tiny_config(use_pretraining=False)
        store = ArtifactStore(tmp_path / "cache")
        PipelineRunner(store, workers=4).run(build_pipeline_stages(config, "ar"))
        warm = PipelineRunner(ArtifactStore(tmp_path / "cache")).run(
            build_pipeline_stages(config, "ar"))
        assert warm.cache_misses == []

    def test_per_run_workers_override(self):
        runner = PipelineRunner(ArtifactStore())
        result = runner.run(self.diamond_stages(), workers=3)
        assert set(result.artifacts) == {"base", "left", "right", "merge"}

    def test_stage_exception_propagates(self):
        def boom():
            raise RuntimeError("stage failed")

        stages = [FunctionStage("ok", lambda: 1),
                  FunctionStage("boom", boom)]
        with pytest.raises(RuntimeError, match="stage failed"):
            PipelineRunner(ArtifactStore(), workers=2).run(stages)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            PipelineRunner(workers=0)
        with pytest.raises(ValueError):
            PipelineRunner().run([], workers=0)

    def test_overrides_resolve_before_parallel_stages(self):
        stages = [FunctionStage("double", lambda base: base * 2,
                                inputs=("base",)),
                  FunctionStage("triple", lambda base: base * 3,
                                inputs=("base",))]
        result = PipelineRunner(ArtifactStore(), workers=2).run(
            stages, overrides={"base": 5})
        assert result.artifacts["double"] == 10
        assert result.artifacts["triple"] == 15


# ----------------------------------------------------------------------
# ParallelSweepExecutor and the sweep workers= paths
# ----------------------------------------------------------------------
class TestParallelSweeps:
    def test_executor_preserves_input_order(self):
        def slow_identity(item):
            time.sleep(0.002 * (4 - item))  # later items finish first
            return item

        assert ParallelSweepExecutor(4).map(slow_identity, range(4)) == [0, 1, 2, 3]

    def test_executor_propagates_exceptions(self):
        def maybe_boom(item):
            if item == 2:
                raise ValueError("bad grid point")
            return item

        with pytest.raises(ValueError, match="bad grid point"):
            ParallelSweepExecutor(3).map(maybe_boom, range(4))

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_slots_sweep_parallel_rows_identical(self):
        kwargs = dict(num_slots_values=(4, 8), frame_size=16, tile_size=8,
                      measure_correlation=True, num_clips=8, seed=0)
        serial = sweep_exposure_slots(**kwargs)
        store = ArtifactStore()
        parallel = sweep_exposure_slots(store=store, workers=2, **kwargs)
        assert parallel == serial
        # Shared store populated concurrently still serves a warm re-sweep.
        again = sweep_exposure_slots(store=store, workers=2, **kwargs)
        assert again == serial

    def test_density_sweep_parallel_rows_identical(self):
        kwargs = dict(densities=(0.25, 0.5, 0.75), num_slots=8, tile_size=4,
                      frame_size=16, num_clips=8, seed=0)
        assert sweep_exposure_density(workers=3, **kwargs) == \
            sweep_exposure_density(**kwargs)

    def test_tile_and_codec_sweeps_parallel_rows_identical(self):
        assert sweep_tile_size(workers=3) == sweep_tile_size()
        kwargs = dict(qualities=(10, 50, 90), frame_size=16, num_slots=8)
        assert sweep_digital_codec_quality(workers=3, **kwargs) == \
            sweep_digital_codec_quality(**kwargs)


# ----------------------------------------------------------------------
# BatchEncoder: zero-clip edge case, thread-safe counters, parallel path
# ----------------------------------------------------------------------
class TestBatchEncoderConcurrency:
    def make_encoder(self, batch_size=2, num_slots=8, tile_size=4, frame_size=16):
        config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                          frame_height=frame_size, frame_width=frame_size)
        pattern = make_pattern("random", num_slots, tile_size,
                               rng=np.random.default_rng(0))
        return BatchEncoder(CodedExposureSensor(config, pattern),
                            batch_size=batch_size)

    def test_zero_clip_batch_returns_empty_without_counting(self):
        encoder = self.make_encoder()
        coded = encoder.encode(np.zeros((0, 8, 16, 16)))
        assert coded.shape == (0, 16, 16)
        assert coded.dtype == np.float64
        assert encoder.stats == {"clips_encoded": 0, "batches_encoded": 0}

    def test_encode_parallel_matches_encode(self, rng):
        clips = rng.random((9, 8, 16, 16))
        encoder = self.make_encoder(batch_size=2)
        serial = encoder.encode(clips)
        parallel = encoder.encode_parallel(clips, workers=3)
        np.testing.assert_array_equal(serial, parallel)
        # Both passes chunked identically: 5 batches each.
        assert encoder.stats == {"clips_encoded": 18, "batches_encoded": 10}

    def test_encode_parallel_zero_and_validation(self, rng):
        encoder = self.make_encoder()
        assert encoder.encode_parallel(np.zeros((0, 8, 16, 16))).shape == (0, 16, 16)
        with pytest.raises(ValueError):
            encoder.encode_parallel(rng.random((8, 16, 16)))
        with pytest.raises(ValueError):
            encoder.encode_parallel(rng.random((2, 8, 16, 16)), workers=0)

    def test_counters_exact_under_thread_hammer(self, rng):
        encoder = self.make_encoder(batch_size=2)
        clips = rng.random((4, 8, 16, 16))
        run_threads(8, lambda _i: encoder.encode(clips))
        assert encoder.stats == {"clips_encoded": 32, "batches_encoded": 16}


# ----------------------------------------------------------------------
# Seeded-by-default RNGs (satellite fix)
# ----------------------------------------------------------------------
class TestSeededDefaults:
    def test_random_tile_masking_default_is_deterministic(self):
        keep_a, masked_a = random_tile_masking(16, 0.75)
        keep_b, masked_b = random_tile_masking(16, 0.75)
        np.testing.assert_array_equal(keep_a, keep_b)
        np.testing.assert_array_equal(masked_a, masked_b)
        keep_seeded, masked_seeded = random_tile_masking(
            16, 0.75, np.random.default_rng(0))
        np.testing.assert_array_equal(keep_a, keep_seeded)
        np.testing.assert_array_equal(masked_a, masked_seeded)

    def test_pattern_defaults_are_deterministic(self):
        np.testing.assert_array_equal(random_pattern(8, 4), random_pattern(8, 4))
        np.testing.assert_array_equal(
            random_pattern(8, 4),
            random_pattern(8, 4, rng=np.random.default_rng(0)))
