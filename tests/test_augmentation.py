"""Tests for the video augmentation pipeline (repro.data.augmentation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    AugmentationPipeline,
    additive_gaussian_noise,
    brightness_contrast_jitter,
    default_train_pipeline,
    random_crop,
    random_erasing,
    random_horizontal_flip,
    repeated_augmentation,
    temporal_jitter,
    temporal_reverse,
)


@pytest.fixture
def clip(rng):
    return rng.random((8, 16, 16))


class TestSpatialAugmentations:
    def test_random_crop_shape_and_content(self, clip, rng):
        cropped = random_crop(clip, (8, 12), rng)
        assert cropped.shape == (8, 8, 12)
        # Every cropped frame must be a contiguous window of the original.
        assert cropped.max() <= clip.max() and cropped.min() >= clip.min()

    def test_random_crop_full_size_is_identity(self, clip, rng):
        assert np.array_equal(random_crop(clip, (16, 16), rng), clip)

    def test_random_crop_too_large(self, clip, rng):
        with pytest.raises(ValueError):
            random_crop(clip, (20, 16), rng)

    def test_flip_probability_one_reverses_columns(self, clip, rng):
        flipped = random_horizontal_flip(clip, rng, probability=1.0)
        assert np.array_equal(flipped, clip[:, :, ::-1])

    def test_flip_probability_zero_is_identity(self, clip, rng):
        assert np.array_equal(random_horizontal_flip(clip, rng, probability=0.0), clip)

    def test_flip_probability_validation(self, clip, rng):
        with pytest.raises(ValueError):
            random_horizontal_flip(clip, rng, probability=1.5)

    def test_random_erasing_blanks_a_region(self, rng):
        clip = np.ones((4, 16, 16))
        erased = random_erasing(clip, rng, max_fraction=0.25, fill=0.0)
        assert erased.shape == clip.shape
        assert (erased == 0.0).any()
        # The erased window is identical across frames.
        zero_mask = erased[0] == 0.0
        for frame in erased:
            assert np.array_equal(frame == 0.0, zero_mask)

    def test_random_erasing_validation(self, clip, rng):
        with pytest.raises(ValueError):
            random_erasing(clip, rng, max_fraction=0.0)


class TestPhotometricAugmentations:
    def test_brightness_contrast_stays_in_range(self, clip, rng):
        jittered = brightness_contrast_jitter(clip, rng, max_brightness=0.3,
                                              max_contrast=0.5)
        assert jittered.min() >= 0.0 and jittered.max() <= 1.0
        assert jittered.shape == clip.shape

    def test_zero_magnitude_jitter_is_identity(self, clip, rng):
        unchanged = brightness_contrast_jitter(clip, rng, max_brightness=0.0,
                                               max_contrast=0.0)
        assert np.allclose(unchanged, clip)

    def test_noise_changes_values_but_not_shape(self, clip, rng):
        noisy = additive_gaussian_noise(clip, rng, std=0.1)
        assert noisy.shape == clip.shape
        assert not np.array_equal(noisy, clip)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0

    def test_zero_noise_is_identity(self, clip, rng):
        assert np.array_equal(additive_gaussian_noise(clip, rng, std=0.0), clip)

    def test_negative_magnitudes_rejected(self, clip, rng):
        with pytest.raises(ValueError):
            additive_gaussian_noise(clip, rng, std=-0.1)
        with pytest.raises(ValueError):
            brightness_contrast_jitter(clip, rng, max_brightness=-0.1)


class TestTemporalAugmentations:
    def test_temporal_jitter_is_contiguous_window(self, clip, rng):
        sampled = temporal_jitter(clip, 4, rng)
        assert sampled.shape == (4, 16, 16)
        # The window must match some contiguous slice of the original clip.
        matches = [np.array_equal(sampled, clip[start:start + 4])
                   for start in range(5)]
        assert any(matches)

    def test_temporal_jitter_full_length_is_identity(self, clip, rng):
        assert np.array_equal(temporal_jitter(clip, 8, rng), clip)

    def test_temporal_jitter_validation(self, clip, rng):
        with pytest.raises(ValueError):
            temporal_jitter(clip, 0, rng)
        with pytest.raises(ValueError):
            temporal_jitter(clip, 9, rng)

    def test_temporal_reverse_default_off(self, clip, rng):
        assert np.array_equal(temporal_reverse(clip, rng), clip)

    def test_temporal_reverse_probability_one(self, clip, rng):
        assert np.array_equal(temporal_reverse(clip, rng, probability=1.0), clip[::-1])


class TestPipelines:
    def test_pipeline_applies_all_transforms(self, clip):
        pipeline = AugmentationPipeline(
            transforms=[lambda c, r: random_crop(c, (8, 8), r),
                        lambda c, r: additive_gaussian_noise(c, r, std=0.05)],
            seed=3)
        out = pipeline(clip)
        assert out.shape == (8, 8, 8)

    def test_pipeline_reproducible_from_seed(self, clip):
        def build():
            return AugmentationPipeline(
                transforms=[lambda c, r: random_crop(c, (8, 8), r)], seed=7)
        assert np.array_equal(build()(clip), build()(clip))

    def test_apply_batch(self, rng):
        clips = rng.random((3, 4, 8, 8))
        pipeline = default_train_pipeline(noise_std=0.01, seed=0)
        out = pipeline.apply_batch(clips)
        assert out.shape == clips.shape
        with pytest.raises(ValueError):
            pipeline.apply_batch(clips[0])

    def test_default_pipeline_with_crop(self, clip):
        pipeline = default_train_pipeline(crop=(12, 12), seed=0)
        assert pipeline(clip).shape == (8, 12, 12)

    def test_repeated_augmentation_expands_dataset(self, rng):
        videos = rng.random((4, 4, 8, 8))
        labels = np.arange(4)
        pipeline = default_train_pipeline(noise_std=0.02, seed=0)
        expanded, expanded_labels = repeated_augmentation(videos, labels, pipeline,
                                                          repeats=3)
        assert expanded.shape == (12, 4, 8, 8)
        assert np.array_equal(expanded_labels, np.tile(labels, 3))
        # Different repeats draw different augmentations.
        assert not np.array_equal(expanded[:4], expanded[4:8])

    def test_repeated_augmentation_validation(self, rng):
        videos = rng.random((4, 4, 8, 8))
        labels = np.arange(4)
        pipeline = default_train_pipeline(seed=0)
        with pytest.raises(ValueError):
            repeated_augmentation(videos, labels, pipeline, repeats=0)
        with pytest.raises(ValueError):
            repeated_augmentation(videos, labels[:2], pipeline)

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_repeated_augmentation_length_property(self, repeats):
        rng = np.random.default_rng(repeats)
        videos = rng.random((3, 2, 8, 8))
        labels = np.arange(3)
        pipeline = default_train_pipeline(seed=repeats)
        expanded, expanded_labels = repeated_augmentation(videos, labels, pipeline,
                                                          repeats=repeats)
        assert len(expanded) == 3 * repeats == len(expanded_labels)
