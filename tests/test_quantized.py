"""Tests for the int8 post-training-quantised inference engine.

Covers the quantisation primitives (per-channel weight grids, activation
observers, edge cases: zero-range channels, all-zero calibration,
NaN/inf rejection), the quantised layer semantics (inference-only guard,
integer passthrough, ``input_fold``, Sequential conversion), the
dequantize-free integer CE front-end (``coded_exposure_integer``,
``BatchEncoder(integer=True)``, and the dtype audit proving a uint8 clip
reaches the first quantised GEMM without any float materialisation), and
the quantised-checkpoint round-trip for every Table I model.
"""

import numpy as np
import pytest

from repro.ce import coded_exposure, coded_exposure_integer
from repro.nn import (
    ActivationObserver,
    Linear,
    QuantizationError,
    QuantizedLinear,
    QuantizedPatchEmbed,
    Tensor,
    is_quantized,
    no_grad,
    quantize_model,
    quantize_weight,
)
from repro.nn.modules import Sequential
from repro.runtime import BatchEncoder
from repro.serving import (
    InferenceServer,
    fresh_bundle,
    load_servable,
    quantize_bundle,
    save_servable,
)

TABLE1_MODELS = ["snappix_tiny", "snappix_s", "snappix_b", "svc2d", "c3d",
                 "videomae_st", "downsample"]


def serving_inputs(bundle, count, seed):
    """Model-ready inputs matching the bundle's serving path."""
    rng = np.random.default_rng(seed)
    shape = (count, bundle.num_frames, bundle.image_size, bundle.image_size)
    if bundle.input_kind == "ce":
        if bundle.integer_input:
            clips = rng.integers(0, 256, size=shape, dtype=np.uint8)
            return BatchEncoder(bundle.sensor, integer=True).encode(clips)
        clips = rng.random(shape, dtype=np.float32)
        return BatchEncoder(bundle.sensor, dtype=np.float32).encode(clips)
    return rng.random(shape, dtype=np.float32)


# ----------------------------------------------------------------------
# Quantisation primitives
# ----------------------------------------------------------------------
class TestQuantizeWeight:
    def test_round_trip_within_half_step(self, rng):
        weight = rng.standard_normal((6, 5))
        grid, scale = quantize_weight(weight, channel_axis=1)
        assert grid.dtype == np.int8
        assert np.abs(grid).max() <= 127
        recon = grid.astype(np.float64) * scale[None, :]
        assert np.max(np.abs(recon - weight)) <= 0.5 * scale.max() + 1e-12

    def test_zero_range_channel_gets_unit_scale_and_exact_zeros(self, rng):
        weight = rng.standard_normal((4, 3))
        weight[:, 1] = 0.0
        grid, scale = quantize_weight(weight, channel_axis=1)
        assert scale[1] == 1.0
        assert np.all(grid[:, 1] == 0)
        # Unit scale reconstructs the dead channel exactly.
        assert np.all(grid[:, 1].astype(np.float64) * scale[1] == 0.0)

    def test_all_zero_weight(self):
        grid, scale = quantize_weight(np.zeros((3, 2)), channel_axis=0)
        assert np.all(grid == 0)
        assert np.all(scale == 1.0)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_weight_rejected(self, bad, rng):
        weight = rng.standard_normal((4, 4))
        weight[2, 1] = bad
        with pytest.raises(QuantizationError):
            quantize_weight(weight, channel_axis=0)


class TestActivationObserver:
    def test_all_zero_calibration_freezes_to_unit_scale(self):
        observer = ActivationObserver()
        observer.update(np.zeros((4, 8), dtype=np.float32))
        assert observer.scale() == 1.0

    def test_integer_activations_freeze_to_unit_scale(self):
        observer = ActivationObserver()
        observer.update(np.arange(12, dtype=np.uint16).reshape(3, 4))
        assert observer.integer_seen
        assert observer.scale() == 1.0

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_non_finite_activation_rejected(self, bad):
        observer = ActivationObserver()
        batch = np.ones((2, 3), dtype=np.float32)
        batch[1, 2] = bad
        with pytest.raises(QuantizationError):
            observer.update(batch)

    def test_scale_tracks_absmax(self):
        observer = ActivationObserver()
        observer.update(np.array([0.5, -2.0], dtype=np.float32))
        observer.update(np.array([1.0], dtype=np.float32))
        assert observer.scale() == pytest.approx(2.0 / 127.0)


# ----------------------------------------------------------------------
# Quantised layer semantics
# ----------------------------------------------------------------------
class TestQuantizedLinear:
    def _calibrated(self, rng, in_features=16, out_features=8, fold=None):
        source = Linear(in_features, out_features,
                        rng=np.random.default_rng(0))
        layer = QuantizedLinear(source)
        if fold is not None:
            layer.input_fold = fold
        calibration = rng.standard_normal((32, in_features)).astype(np.float32)
        with no_grad():
            layer(calibration)
        layer.freeze()
        return source, layer

    def test_matches_float_layer_closely(self, rng):
        source = Linear(16, 8, rng=np.random.default_rng(0))
        _, layer = self._calibrated(rng)
        x = rng.standard_normal((10, 16)).astype(np.float32)
        with no_grad():
            ref = source(Tensor(x)).data
            out = layer(x).data
        assert out.shape == ref.shape
        scale = np.abs(ref).max()
        assert np.max(np.abs(out - ref)) <= 0.05 * scale

    def test_inference_only_guard(self, rng):
        _, layer = self._calibrated(rng)
        x = Tensor(rng.standard_normal((2, 16)), requires_grad=True)
        with pytest.raises(RuntimeError):
            layer(x)
        with no_grad():
            layer(x)  # fine under no_grad

    def test_source_dropped_from_state_dict(self, rng):
        _, layer = self._calibrated(rng)
        assert layer.frozen
        assert not any("_source" in name for name in layer.state_dict())

    def test_integer_input_passthrough(self, rng):
        source = Linear(16, 8, rng=np.random.default_rng(0))
        layer = QuantizedLinear(source)
        ints = rng.integers(0, 50, size=(6, 16)).astype(np.int64)
        with no_grad():
            layer(ints)
        layer.freeze()
        # Integer calibration leaves the activation scale at 1: integer
        # inputs are exact grid values.
        assert float(layer.input_scale.data[0]) == 1.0
        with no_grad():
            out = layer(ints).data
        expected = (ints.astype(np.float64)
                    @ (layer.weight_q.data.astype(np.float64)
                       * layer.weight_scale.data[None, :].astype(np.float64)))
        expected += layer.bias.data
        assert np.max(np.abs(out - expected)) <= 1e-3 * max(
            1.0, np.abs(expected).max())

    def test_input_fold_equivalent_to_prescaled_input(self, rng):
        fold = rng.uniform(0.25, 1.0, size=16)
        source, folded = self._calibrated(rng, fold=fold)
        x = rng.standard_normal((8, 16)).astype(np.float32)
        with no_grad():
            out = folded(x).data
            ref = source(Tensor(x * fold[None, :].astype(np.float32))).data
        assert np.max(np.abs(out - ref)) <= 0.05 * np.abs(ref).max()

    def test_input_fold_shape_validated(self, rng):
        source = Linear(16, 8, rng=np.random.default_rng(0))
        layer = QuantizedLinear(source)
        layer.input_fold = np.ones(4)
        with pytest.raises(QuantizationError):
            layer.freeze()


class TestModelConversion:
    def test_sequential_layers_rebound(self, rng):
        model = Sequential(Linear(12, 12, rng=np.random.default_rng(0)),
                           Linear(12, 4, rng=np.random.default_rng(1)))
        calibration = rng.standard_normal((16, 12)).astype(np.float32)
        quantize_model(model, calibration)
        assert is_quantized(model)
        # The ordered layer list must point at the swapped modules, not
        # the stale float originals.
        assert all(isinstance(layer, QuantizedLinear)
                   for layer in model.layers)
        with no_grad():
            out = model(calibration).data
        assert out.shape == (16, 4)

    def test_model_without_quantisable_layers_rejected(self):
        from repro.nn.modules import LayerNorm
        model = Sequential(LayerNorm(8))
        with pytest.raises(QuantizationError):
            quantize_model(model, np.zeros((2, 8), dtype=np.float32))

    def test_nan_calibration_rejected(self, rng):
        model = Sequential(Linear(8, 4, rng=np.random.default_rng(0)))
        calibration = rng.standard_normal((4, 8)).astype(np.float32)
        calibration[0, 0] = np.nan
        with pytest.raises(QuantizationError):
            quantize_model(model, calibration)


# ----------------------------------------------------------------------
# Dequantize-free integer CE front-end
# ----------------------------------------------------------------------
class TestCodedExposureInteger:
    def _mask(self, rng, slots=8, size=16):
        return (rng.random((slots, size, size)) < 0.5).astype(np.uint8)

    def test_uint8_video_accumulates_in_uint16(self, rng):
        video = rng.integers(0, 256, size=(3, 8, 16, 16), dtype=np.uint8)
        mask = self._mask(rng)
        coded = coded_exposure_integer(video, mask)
        assert coded.dtype == np.uint16
        reference = coded_exposure(video.astype(np.float64), mask,
                                   normalize=False)
        assert np.array_equal(coded.astype(np.float64), reference)

    def test_wide_integer_video_accumulates_in_int64(self, rng):
        video = rng.integers(0, 1 << 20, size=(2, 8, 8, 8), dtype=np.int64)
        mask = self._mask(rng, size=8)
        coded = coded_exposure_integer(video, mask)
        assert coded.dtype == np.int64

    def test_single_clip_squeeze(self, rng):
        video = rng.integers(0, 256, size=(8, 16, 16), dtype=np.uint8)
        mask = self._mask(rng)
        coded = coded_exposure_integer(video, mask)
        assert coded.shape == (16, 16)
        batched = coded_exposure_integer(video[None], mask)
        assert np.array_equal(coded, batched[0])

    def test_float_video_rejected(self, rng):
        mask = self._mask(rng)
        with pytest.raises(TypeError):
            coded_exposure_integer(rng.random((2, 8, 16, 16)), mask)


class TestBatchEncoderIntegerMode:
    def _sensor(self, seed=0):
        bundle = fresh_bundle("snappix_tiny", image_size=16, num_frames=8,
                              tile_size=8, seed=seed)
        return bundle.sensor

    def test_integer_mode_matches_unnormalized_float_encode(self, rng):
        sensor = self._sensor()
        clips = rng.integers(0, 256, size=(5, 8, 16, 16), dtype=np.uint8)
        coded = BatchEncoder(sensor, integer=True).encode(clips)
        assert coded.dtype == np.uint16
        reference = BatchEncoder(sensor, normalize=False).encode(
            clips.astype(np.float64))
        assert np.array_equal(coded.astype(np.float64), reference)

    def test_integer_mode_rejects_normalize_and_dtype(self):
        sensor = self._sensor()
        with pytest.raises(ValueError):
            BatchEncoder(sensor, integer=True, normalize=True)
        with pytest.raises(ValueError):
            BatchEncoder(sensor, integer=True, dtype=np.float32)

    def test_integer_mode_rejects_float_clips(self, rng):
        encoder = BatchEncoder(self._sensor(), integer=True)
        with pytest.raises(TypeError):
            encoder.encode(rng.random((8, 16, 16)))

    def test_empty_batch_is_integer(self, rng):
        encoder = BatchEncoder(self._sensor(), integer=True)
        coded = encoder.encode(np.zeros((0, 8, 16, 16), dtype=np.uint8))
        assert coded.shape == (0, 16, 16)
        assert coded.dtype == np.uint16
        assert encoder.stats["clips_encoded"] == 0


class TestDequantizeFreePath:
    """Acceptance audit: uint8 clips reach the first quantised GEMM as
    integers — no float64/float32 full-frame materialisation between the
    sensor and the model."""

    def test_uint8_clip_reaches_first_gemm_as_integer(self):
        bundle = fresh_bundle("snappix_tiny", image_size=16, num_frames=8,
                              tile_size=8, seed=1)
        qbundle = quantize_bundle(bundle, num_calibration=4, seed=1)
        assert qbundle.integer_input
        embed = next(m for m in qbundle.model.modules()
                     if isinstance(m, QuantizedPatchEmbed))
        seen = []
        original = embed.proj._gemm

        def spy(x2):
            seen.append(x2.dtype)
            return original(x2)

        embed.proj._gemm = spy
        rng = np.random.default_rng(5)
        clips = rng.integers(0, 256, size=(4, 8, 16, 16), dtype=np.uint8)
        with InferenceServer(qbundle) as server:
            predictions = [f.result(timeout=30)
                           for f in server.submit_many(list(clips))]
        assert len(predictions) == 4
        assert seen and all(np.issubdtype(d, np.integer) for d in seen)

    def test_quantized_patchify_preserves_integer_dtype(self):
        bundle = fresh_bundle("snappix_tiny", image_size=16, num_frames=8,
                              tile_size=8, seed=1)
        qbundle = quantize_bundle(bundle, num_calibration=4, seed=1)
        embed = next(m for m in qbundle.model.modules()
                     if isinstance(m, QuantizedPatchEmbed))
        coded = serving_inputs(qbundle, count=2, seed=2)
        assert coded.dtype == np.uint16
        p = embed.patch_size
        grid = coded.reshape(2, 16 // p, p, 16 // p, p)
        patches = grid.transpose(0, 1, 3, 2, 4).reshape(2, -1, p * p)
        assert patches.dtype == np.uint16  # the rearrange never casts

    def test_integer_path_matches_float_serving_labels(self):
        bundle = fresh_bundle("snappix_s", image_size=16, num_frames=8,
                              tile_size=8, seed=2)
        qbundle = quantize_bundle(bundle, num_calibration=8, seed=2)
        rng = np.random.default_rng(9)
        clips = rng.integers(0, 256, size=(64, 8, 16, 16), dtype=np.uint8)
        with InferenceServer(bundle) as float_server, \
                InferenceServer(qbundle) as quant_server:
            float_labels = [p.label for p in
                            float_server.predict_sequential(list(clips))]
            quant_labels = [p.label for p in
                            quant_server.predict_sequential(list(clips))]
        mismatches = sum(a != b for a, b in zip(float_labels, quant_labels))
        # The engine's accuracy budget: <= 1% argmax mismatches.
        assert mismatches <= max(1, int(0.01 * len(clips)))


# ----------------------------------------------------------------------
# Checkpoint round-trip, every Table I model
# ----------------------------------------------------------------------
class TestQuantizedCheckpointRoundTrip:
    @pytest.mark.parametrize("name", TABLE1_MODELS)
    def test_round_trip_bit_identical(self, name, tmp_path):
        bundle = fresh_bundle(name, image_size=16, num_frames=8,
                              tile_size=8, seed=3)
        qbundle = quantize_bundle(bundle, num_calibration=4, seed=3)
        assert qbundle.quantized
        assert is_quantized(qbundle.model)
        inputs = serving_inputs(qbundle, count=3, seed=11)
        with no_grad():
            reference = qbundle.model(inputs).data

        path = save_servable(tmp_path / f"{name}_int8", qbundle.model,
                             qbundle.spec, sensor=qbundle.sensor,
                             metadata=qbundle.metadata)
        loaded = load_servable(path)
        assert loaded.quantized
        assert loaded.integer_input == qbundle.integer_input

        saved_state = qbundle.model.state_dict()
        loaded_state = loaded.model.state_dict()
        assert set(saved_state) == set(loaded_state)
        for key, value in saved_state.items():
            assert loaded_state[key].dtype == value.dtype, key
            assert np.array_equal(loaded_state[key], value), key

        with no_grad():
            restored = loaded.model(inputs).data
        assert np.array_equal(restored, reference)
