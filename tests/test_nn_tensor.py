"""Unit and property-based tests for the autodiff tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, concatenate, no_grad, stack, where
from repro.nn.tensor import _unbroadcast


def finite_floats(shape):
    return arrays(np.float64, shape,
                  elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False))


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([0.5, 0.5], requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [-1.0, -1.0])

    def test_scalar_broadcasting(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = (a * 2.0 + 1.0).sum()
        out.backward()
        assert np.allclose(a.grad, 2.0 * np.ones((2, 3)))

    def test_matmul_backward(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[5.0], [6.0]]), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, [[5.0, 6.0], [5.0, 6.0]])
        assert np.allclose(b.grad, [[4.0], [6.0]])

    def test_batched_matmul_shapes(self):
        a = Tensor(np.random.default_rng(0).random((4, 3, 5)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).random((4, 5, 2)), requires_grad=True)
        out = a @ b
        assert out.shape == (4, 3, 2)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape


class TestReductionsAndShape:
    def test_mean_axis(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a.mean(axis=1).sum().backward()
        assert np.allclose(a.grad, np.full((2, 3), 1 / 3))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=0, keepdims=True)
        assert out.shape == (1, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).random((4, 5))
        t = Tensor(data)
        assert np.allclose(t.var(axis=1).data, data.var(axis=1))

    def test_reshape_transpose_roundtrip(self):
        a = Tensor(np.arange(24, dtype=float).reshape(2, 3, 4), requires_grad=True)
        out = a.reshape(6, 4).transpose(1, 0)
        assert out.shape == (4, 6)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3, 4)))

    def test_getitem_backward(self):
        a = Tensor(np.arange(10, dtype=float), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(a.grad, expected)

    def test_max_reduction(self):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_pad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = a.pad(((1, 1), (0, 0)))
        assert out.shape == (4, 2)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 2)))


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid", "gelu"])
    def test_numeric_gradients(self, op):
        rng = np.random.default_rng(7)
        data = rng.random(5) + 0.5  # positive for log/sqrt
        t = Tensor(data, requires_grad=True)
        getattr(t, op)().sum().backward()
        eps = 1e-6
        numeric = np.zeros_like(data)
        for i in range(data.size):
            plus, minus = data.copy(), data.copy()
            plus[i] += eps
            minus[i] -= eps
            numeric[i] = (getattr(Tensor(plus), op)().sum().data -
                          getattr(Tensor(minus), op)().sum().data) / (2 * eps)
        assert np.allclose(t.grad, numeric, rtol=1e-4, atol=1e-6)

    def test_relu_gradient_mask(self):
        a = Tensor([-1.0, 2.0, -3.0, 4.0], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0, 1.0])

    def test_clip(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestGraphSemantics:
    def test_no_grad_context(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        b = a.detach() * 3
        assert not b.requires_grad

    def test_grad_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        out = a * a + a
        out.sum().backward()
        assert np.allclose(a.grad, [5.0])  # 2a + 1

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 2)))
        assert np.allclose(b.grad, np.ones((3, 2)))

    def test_stack_backward(self):
        tensors = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        out = stack(tensors, axis=0)
        assert out.shape == (4, 3)
        out.sum().backward()
        for t in tensors:
            assert np.allclose(t.grad, np.ones(3))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = where(cond, a, b)
        assert np.allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])


class TestUnbroadcast:
    def test_leading_axis(self):
        grad = np.ones((4, 3))
        assert _unbroadcast(grad, (3,)).shape == (3,)
        assert np.allclose(_unbroadcast(grad, (3,)), 4 * np.ones(3))

    def test_keepdim_axis(self):
        grad = np.ones((4, 3))
        assert _unbroadcast(grad, (1, 3)).shape == (1, 3)

    def test_identity(self):
        grad = np.ones((2, 2))
        assert _unbroadcast(grad, (2, 2)) is grad


class TestPropertyBased:
    @given(finite_floats((3, 4)), finite_floats((3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_add_commutative(self, a, b):
        assert np.allclose((Tensor(a) + Tensor(b)).data, (Tensor(b) + Tensor(a)).data)

    @given(finite_floats((2, 3)))
    @settings(max_examples=25, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, np.ones_like(a))

    @given(finite_floats((4,)), finite_floats((4,)))
    @settings(max_examples=25, deadline=None)
    def test_product_rule(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        assert np.allclose(ta.grad, b)
        assert np.allclose(tb.grad, a)

    @given(finite_floats((3, 3)))
    @settings(max_examples=20, deadline=None)
    def test_double_reshape_identity(self, a):
        t = Tensor(a, requires_grad=True)
        out = t.reshape(9).reshape(3, 3)
        assert np.allclose(out.data, a)
