"""Tests for the CE pixel functional simulator and the area model (paper Sec. V)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ce import (
    CEConfig,
    coded_exposure,
    expand_tile_pattern,
    random_pattern,
    sparse_random_pattern,
)
from repro.hardware import (
    BROADCAST_WIRE_SIDE_UM,
    CE_LOGIC_AREA_22NM_UM2,
    CE_LOGIC_AREA_65NM_UM2,
    CEPixel,
    SHIFT_REGISTER_WIRES,
    StackedCESensor,
    TilePatternShiftRegister,
    broadcast_wire_area,
    broadcast_wire_side,
    broadcast_wires_per_pixel,
    ce_logic_area,
    pixel_area_report,
    scaling_factor,
)


class TestCEPixel:
    def test_exposed_slot_is_integrated(self):
        pixel = CEPixel()
        pixel.load_pattern_bit(1)
        pixel.pattern_reset()
        pixel.expose(0.7)
        pixel.pattern_transfer()
        assert pixel.readout() == pytest.approx(0.7)

    def test_unexposed_slot_is_discarded(self):
        pixel = CEPixel()
        pixel.load_pattern_bit(0)
        pixel.pattern_reset()
        pixel.expose(0.7)
        pixel.pattern_transfer()
        assert pixel.readout() == pytest.approx(0.0)

    def test_multi_slot_accumulation(self):
        """FD accumulates exactly the slots whose CE bit is 1 (Eqn. 1)."""
        pixel = CEPixel()
        light = [0.1, 0.2, 0.3, 0.4]
        bits = [1, 0, 1, 0]
        for intensity, bit in zip(light, bits):
            pixel.load_pattern_bit(bit)
            pixel.pattern_reset()
            pixel.expose(intensity)
            pixel.load_pattern_bit(bit)
            pixel.pattern_transfer()
            pixel.power_gate_dff()
        assert pixel.readout() == pytest.approx(0.1 + 0.3)

    def test_pd_reset_clears_stale_charge(self):
        """A CE bit of 1 resets the PD so earlier unselected light is not
        accidentally integrated."""
        pixel = CEPixel()
        pixel.load_pattern_bit(0)
        pixel.pattern_reset()
        pixel.expose(0.9)          # stale charge from an unselected slot
        pixel.pattern_transfer()   # not transferred
        pixel.load_pattern_bit(1)
        pixel.pattern_reset()      # clears the stale 0.9
        pixel.expose(0.2)
        pixel.pattern_transfer()
        assert pixel.readout() == pytest.approx(0.2)

    def test_readout_resets_pixel(self):
        pixel = CEPixel()
        pixel.load_pattern_bit(1)
        pixel.pattern_reset()
        pixel.expose(1.0)
        pixel.pattern_transfer()
        pixel.readout()
        assert pixel.readout() == pytest.approx(0.0)

    def test_invalid_bit_and_light(self):
        pixel = CEPixel()
        with pytest.raises(ValueError):
            pixel.load_pattern_bit(2)
        with pytest.raises(ValueError):
            pixel.expose(-1.0)

    def test_control_without_dff_power_raises(self):
        pixel = CEPixel()
        with pytest.raises(RuntimeError):
            pixel.pattern_reset()
        pixel.load_pattern_bit(1)
        pixel.power_gate_dff()
        with pytest.raises(RuntimeError):
            pixel.pattern_transfer()

    def test_activity_counters(self):
        pixel = CEPixel()
        pixel.load_pattern_bit(1)
        pixel.pattern_reset()
        pixel.expose(0.5)
        pixel.pattern_transfer()
        pixel.readout()
        assert pixel.counters.dff_writes == 1
        assert pixel.counters.pd_resets == 1
        assert pixel.counters.charge_transfers == 1
        assert pixel.counters.readouts == 1


class TestShiftRegister:
    def test_stream_in_assigns_bits(self):
        pixels = [CEPixel() for _ in range(4)]
        register = TilePatternShiftRegister(pixels)
        register.stream_in([1, 0, 1, 0])
        # Shift-register semantics: first-streamed bit lands in the last pixel.
        assert [p.dff_bit for p in pixels] == [0, 1, 0, 1]
        assert register.clock_cycles == 4

    def test_wrong_length_raises(self):
        register = TilePatternShiftRegister([CEPixel(), CEPixel()])
        with pytest.raises(ValueError):
            register.stream_in([1])

    def test_empty_tile_rejected(self):
        with pytest.raises(ValueError):
            TilePatternShiftRegister([])

    def test_invalid_bits_rejected(self):
        register = TilePatternShiftRegister([CEPixel(), CEPixel()])
        with pytest.raises(ValueError):
            register.stream_in([1, 2])


class TestStackedCESensor:
    def _config(self, slots=4, tile=2, size=8):
        return CEConfig(num_slots=slots, tile_size=tile, frame_height=size,
                        frame_width=size)

    def test_hardware_matches_equation_one(self, rng):
        """The Fig. 5 protocol computes exactly Eqn. 1 — the paper's core
        hardware claim, checked against the algorithmic CE operator."""
        config = self._config()
        pattern = random_pattern(4, 2, rng=rng)
        sensor = StackedCESensor(config, pattern)
        video = rng.random((4, 8, 8))
        hardware_image = sensor.capture(video)
        reference = coded_exposure(video, expand_tile_pattern(pattern, 8, 8))
        assert np.allclose(hardware_image, reference)

    def test_sparse_pattern_matches_reference(self, rng):
        config = self._config(slots=6, tile=2, size=4)
        pattern = sparse_random_pattern(6, 2, rng=rng)
        sensor = StackedCESensor(config, pattern)
        video = rng.random((6, 4, 4))
        assert np.allclose(sensor.capture(video),
                           coded_exposure(video, expand_tile_pattern(pattern, 4, 4)))

    def test_invalid_pattern_shape(self, rng):
        with pytest.raises(ValueError):
            StackedCESensor(self._config(), np.ones((4, 3, 3)))

    def test_non_binary_pattern(self):
        with pytest.raises(ValueError):
            StackedCESensor(self._config(), np.full((4, 2, 2), 0.5))

    def test_wrong_video_shape(self, rng):
        sensor = StackedCESensor(self._config(), random_pattern(4, 2, rng=rng))
        with pytest.raises(ValueError):
            sensor.capture(rng.random((3, 8, 8)))

    def test_clock_cycle_accounting(self, rng):
        config = self._config(slots=3, tile=2, size=4)
        sensor = StackedCESensor(config, random_pattern(3, 2, rng=rng))
        sensor.capture(rng.random((3, 4, 4)))
        stats = sensor.capture_stats()
        assert stats.pattern_clock_cycles == sensor.expected_clock_cycles_per_capture()
        # Every pixel's DFF is written twice per slot.
        assert stats.dff_writes == 2 * 3 * 16
        assert stats.pixels_read == 16

    def test_stats_dict(self, rng):
        config = self._config(slots=2, tile=2, size=4)
        sensor = StackedCESensor(config, random_pattern(2, 2, rng=rng))
        sensor.capture(rng.random((2, 4, 4)))
        stats = sensor.capture_stats().as_dict()
        assert set(stats) == {"pattern_clock_cycles", "dff_writes", "pd_resets",
                              "charge_transfers", "pixels_read"}

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=8, deadline=None)
    def test_protocol_equivalence_property(self, slots):
        """For any slot count and random pattern, hardware == Eqn. 1."""
        rng = np.random.default_rng(slots)
        config = CEConfig(num_slots=slots, tile_size=2, frame_height=4, frame_width=4)
        pattern = random_pattern(slots, 2, rng=rng)
        sensor = StackedCESensor(config, pattern)
        video = rng.random((slots, 4, 4))
        assert np.allclose(sensor.capture(video),
                           coded_exposure(video, expand_tile_pattern(pattern, 4, 4)))


class TestAreaModel:
    def test_65nm_to_22nm_matches_paper(self):
        """Sec. V: 30 um^2 at 65 nm scales to ~3.2 um^2 at 22 nm."""
        assert ce_logic_area(65.0) == pytest.approx(CE_LOGIC_AREA_65NM_UM2)
        assert ce_logic_area(22.0) == pytest.approx(CE_LOGIC_AREA_22NM_UM2, rel=0.02)

    def test_scaling_factor_monotonic(self):
        assert scaling_factor(65, 22) > scaling_factor(65, 45) > 1.0
        with pytest.raises(ValueError):
            scaling_factor(0, 22)

    def test_broadcast_wire_sides_match_paper(self):
        """Sec. V: 2.24 um at N = 8 and 3.92 um at N = 14."""
        assert broadcast_wire_side(8) == pytest.approx(BROADCAST_WIRE_SIDE_UM[8], rel=0.01)
        assert broadcast_wire_side(14) == pytest.approx(BROADCAST_WIRE_SIDE_UM[14], rel=0.01)

    def test_broadcast_wires_grow_with_tile(self):
        assert broadcast_wires_per_pixel(14) > broadcast_wires_per_pixel(8)
        assert broadcast_wires_per_pixel(8) == 16
        with pytest.raises(ValueError):
            broadcast_wires_per_pixel(0)

    def test_shift_register_wires_constant(self):
        assert SHIFT_REGISTER_WIRES == 4

    def test_area_report_paper_claims(self):
        """The stacked logic hides under the APS pixel; the broadcast wires
        exceed it at N = 14 (the paper's argument for the shift register)."""
        report_small = pixel_area_report(node_nm=22.0, tile_size=8)
        report_large = pixel_area_report(node_nm=22.0, tile_size=14)
        assert report_small.logic_fits_under_pixel
        assert not report_small.broadcast_exceeds_pixel
        assert report_large.broadcast_exceeds_pixel

    def test_broadcast_area_quadratic_in_n(self):
        assert broadcast_wire_area(16) == pytest.approx(4 * broadcast_wire_area(8))

    def test_invalid_tile_size(self):
        with pytest.raises(ValueError):
            broadcast_wire_side(0)
