"""Integration tests for the end-to-end SnapPix pipeline and experiment runners."""

import numpy as np
import pytest

from repro.core import (
    FIG6_PATTERNS,
    PipelineConfig,
    SnapPixSystem,
    run_correlation_comparison,
    run_throughput_comparison,
)


def fast_config(**overrides):
    defaults = dict(frame_size=16, num_slots=8, tile_size=8, model_variant="tiny",
                    pattern_epochs=1, pretrain_epochs=1, finetune_epochs=3,
                    pretrain_clips=12, train_clips_per_class=3,
                    test_clips_per_class=2, batch_size=6)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestPipelineConfig:
    def test_defaults_match_paper_settings(self):
        config = PipelineConfig()
        assert config.num_slots == 16
        assert config.tile_size == 8
        assert config.mask_ratio == 0.85
        assert config.pattern == "decorrelated"

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            PipelineConfig(pattern="checkerboard")

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            PipelineConfig(model_variant="xl")

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PipelineConfig(frame_size=30, tile_size=8)

    def test_ce_config_derivation(self):
        config = fast_config()
        ce = config.ce_config()
        assert ce.num_slots == 8
        assert ce.frame_height == 16


class TestSnapPixSystem:
    def test_full_ar_pipeline(self):
        system = SnapPixSystem(fast_config(use_pretraining=True))
        result = system.run(task="ar")
        assert 0.0 <= result.test_accuracy <= 1.0
        assert np.isfinite(result.pattern_correlation)
        assert np.isfinite(result.pretrain_final_loss)
        assert result.inference_per_second > 0
        assert result.energy_summary["readout_reduction"] == pytest.approx(8.0)
        as_dict = result.as_dict()
        assert as_dict["dataset"] == "ssv2"
        assert as_dict["pattern"] == "decorrelated"

    def test_rec_pipeline_without_pretraining(self):
        system = SnapPixSystem(fast_config(use_pretraining=False))
        result = system.run(task="rec")
        assert np.isfinite(result.test_psnr)
        assert result.test_psnr > 0

    def test_invalid_task(self):
        system = SnapPixSystem(fast_config())
        with pytest.raises(ValueError):
            system.run(task="detection")

    def test_training_before_pattern_raises(self):
        system = SnapPixSystem(fast_config())
        with pytest.raises(RuntimeError):
            system.train_action_recognition()
        with pytest.raises(RuntimeError):
            system.pretrain()

    def test_baseline_pattern_pipeline(self):
        system = SnapPixSystem(fast_config(pattern="sparse_random",
                                           use_pretraining=False))
        correlation = system.prepare_pattern()
        assert 0.0 <= correlation <= 1.0
        metrics = system.train_action_recognition()
        assert 0.0 <= metrics["test_accuracy"] <= 1.0

    def test_global_pattern_pipeline(self):
        system = SnapPixSystem(fast_config(pattern="global", use_pretraining=False))
        correlation = system.prepare_pattern()
        assert 0.0 <= correlation <= 1.0
        metrics = system.train_action_recognition()
        assert 0.0 <= metrics["test_accuracy"] <= 1.0

    def test_hardware_report(self):
        system = SnapPixSystem(fast_config())
        report = system.hardware_report()
        assert report["logic_fits_under_pixel"] == 1.0
        assert report["ce_logic_area_um2"] < report["aps_pixel_area_um2"]

    def test_energy_report_scales_with_slots(self):
        low = SnapPixSystem(fast_config(num_slots=8)).energy_report()
        high = SnapPixSystem(fast_config(num_slots=16)).energy_report()
        assert high["readout_reduction"] > low["readout_reduction"]
        assert high["long_range_saving"] > low["long_range_saving"]


class TestFloat32DefaultParity:
    """The pipeline's default precision is the fast float32 engine.

    Guards the default flip: at an epoch budget above the smoke tests',
    a float32 run must reach the same outcomes as the float64 seed
    behaviour, so flipping the default cannot silently change results.
    """

    BUDGET = dict(frame_size=16, num_slots=8, tile_size=8,
                  model_variant="tiny", pattern_epochs=2, pretrain_epochs=3,
                  finetune_epochs=12, pretrain_clips=24,
                  train_clips_per_class=6, test_clips_per_class=4,
                  batch_size=6, use_pretraining=True)

    def test_default_compute_dtype_is_float32(self):
        assert PipelineConfig().compute_dtype == "float32"

    def test_float32_matches_float64_at_larger_epoch_budget(self):
        result32 = SnapPixSystem(
            PipelineConfig(compute_dtype="float32", **self.BUDGET)).run(task="ar")
        result64 = SnapPixSystem(
            PipelineConfig(compute_dtype="float64", **self.BUDGET)).run(task="ar")
        assert result32.test_accuracy == pytest.approx(result64.test_accuracy)
        assert result32.pretrain_final_loss == pytest.approx(
            result64.pretrain_final_loss, rel=1e-4)
        assert result32.pattern_correlation == pytest.approx(
            result64.pattern_correlation, rel=1e-3)


class TestExperimentRunners:
    def test_correlation_comparison_covers_all_patterns(self):
        rows = run_correlation_comparison(num_slots=8, tile_size=4, frame_size=16,
                                          num_clips=16, pattern_epochs=10)
        assert {row["pattern"] for row in rows} == set(FIG6_PATTERNS)
        by_name = {row["pattern"]: row["correlation"] for row in rows}
        # Fig. 6 legend ordering: the learned pattern decorrelates best, the
        # naive long/short exposures are the most correlated.
        assert by_name["decorrelated"] <= min(by_name["long_exposure"],
                                              by_name["short_exposure"])

    def test_throughput_comparison_ce_faster_than_video(self):
        rows = run_throughput_comparison(frame_size=16, num_slots=8, batch_size=4,
                                         repeats=1)
        speed = {row["model"]: row["inference_per_second"] for row in rows}
        # Table I shape: the coded-image SnapPix models are faster than the
        # video-input baselines of comparable capacity.
        assert speed["snappix_s"] > speed["videomae_st"]
        assert speed["snappix_s"] > speed["c3d"]
        for row in rows:
            assert row["inference_per_second"] > 0
