"""Tests for nn modules: linear, layernorm, MLP, attention, conv, pooling."""

import numpy as np
import pytest

from repro.nn import (
    AdamW,
    AvgPool2d,
    Conv2d,
    Conv3d,
    Dropout,
    GlobalAveragePool,
    LayerNorm,
    Linear,
    MaxPool3d,
    MLP,
    Module,
    MultiHeadAttention,
    Parameter,
    PositionalEmbedding,
    SGD,
    Sequential,
    Tensor,
    TransformerBlock,
    clip_grad_norm,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn import functional as F


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(8, 4, rng=rng)
        out = layer(Tensor(rng.random((5, 8))))
        assert out.shape == (5, 4)

    def test_no_bias(self, rng):
        layer = Linear(8, 4, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradient_flow(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.random((4, 3)), requires_grad=True)
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert x.grad.shape == (4, 3)

    def test_can_fit_linear_regression(self, rng):
        true_w = np.array([[2.0], [-3.0]])
        x = rng.random((64, 2))
        y = x @ true_w + 0.5
        layer = Linear(2, 1, rng=rng)
        opt = SGD(layer.parameters(), lr=0.5)
        for _ in range(300):
            opt.zero_grad()
            loss = F.mse_loss(layer(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, true_w, atol=0.05)
        assert np.allclose(layer.bias.data, [0.5], atol=0.05)


class TestLayerNorm:
    def test_output_statistics(self, rng):
        norm = LayerNorm(16)
        out = norm(Tensor(rng.random((4, 16)) * 10 + 3))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients_flow_to_affine(self, rng):
        norm = LayerNorm(8)
        x = Tensor(rng.random((2, 8)), requires_grad=True)
        norm(x).sum().backward()
        assert norm.weight.grad is not None
        assert norm.bias.grad is not None
        assert x.grad is not None


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.random((10, 10)))
        assert np.allclose(drop(x).data, x.data)

    def test_train_mode_zeroes_entries(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x)
        frac_zero = np.mean(out.data == 0.0)
        assert 0.4 < frac_zero < 0.6

    def test_inverted_scaling_preserves_mean(self):
        drop = Dropout(0.3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200)))
        assert abs(drop(x).data.mean() - 1.0) < 0.05


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(dim=16, num_heads=4, rng=rng)
        out = attn(Tensor(rng.random((2, 9, 16))))
        assert out.shape == (2, 9, 16)

    def test_invalid_heads_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(dim=10, num_heads=3)

    def test_gradients_reach_qkv(self, rng):
        attn = MultiHeadAttention(dim=8, num_heads=2, rng=rng)
        x = Tensor(rng.random((1, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert attn.qkv.weight.grad is not None
        assert x.grad.shape == (1, 4, 8)

    def test_transformer_block_residual(self, rng):
        block = TransformerBlock(dim=16, num_heads=4, rng=rng)
        x = Tensor(rng.random((2, 5, 16)))
        out = block(x)
        assert out.shape == x.shape
        # Residual path means output correlates with input.
        assert np.corrcoef(out.data.ravel(), x.data.ravel())[0, 1] > 0.1

    def test_positional_embedding_added(self, rng):
        pos = PositionalEmbedding(num_positions=10, dim=8, rng=rng)
        x = Tensor(np.zeros((1, 6, 8)))
        out = pos(x)
        assert out.shape == (1, 6, 8)
        assert not np.allclose(out.data, 0.0)


class TestConv:
    def test_conv2d_shape(self, rng):
        conv = Conv2d(1, 4, kernel_size=3, stride=1, padding=1, rng=rng)
        out = conv(Tensor(rng.random((2, 1, 8, 8))))
        assert out.shape == (2, 4, 8, 8)

    def test_conv2d_matches_manual(self, rng):
        conv = Conv2d(1, 1, kernel_size=3, bias=False, rng=rng)
        x = rng.random((1, 1, 5, 5))
        out = conv(Tensor(x))
        kernel = conv.weight.data[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(x[0, 0, i:i + 3, j:j + 3] * kernel)
        assert np.allclose(out.data[0, 0], expected)

    def test_conv2d_gradients(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        x = Tensor(rng.random((2, 2, 6, 6)), requires_grad=True)
        conv(x).sum().backward()
        assert conv.weight.grad.shape == conv.weight.shape
        assert conv.bias.grad.shape == conv.bias.shape
        assert x.grad.shape == x.shape

    def test_conv2d_numeric_weight_grad(self, rng):
        conv = Conv2d(1, 1, kernel_size=2, bias=False, rng=rng)
        x_data = rng.random((1, 1, 4, 4))
        conv(Tensor(x_data)).sum().backward()
        analytic = conv.weight.grad.copy()
        eps = 1e-6
        numeric = np.zeros_like(conv.weight.data)
        flat = conv.weight.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = conv(Tensor(x_data)).sum().data
            flat[i] = orig - eps
            minus = conv(Tensor(x_data)).sum().data
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_conv3d_shape(self, rng):
        conv = Conv3d(1, 2, kernel_size=3, padding=1, rng=rng)
        out = conv(Tensor(rng.random((1, 1, 4, 8, 8))))
        assert out.shape == (1, 2, 4, 8, 8)

    def test_conv3d_gradients(self, rng):
        conv = Conv3d(1, 2, kernel_size=(3, 3, 3), padding=(1, 1, 1), rng=rng)
        x = Tensor(rng.random((1, 1, 4, 6, 6)), requires_grad=True)
        conv(x).sum().backward()
        assert conv.weight.grad.shape == conv.weight.shape
        assert x.grad.shape == x.shape

    def test_avgpool(self, rng):
        pool = AvgPool2d(2)
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = pool(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out.data[0, 0, 0, 0], np.mean([0, 1, 4, 5]))

    def test_maxpool3d(self, rng):
        pool = MaxPool3d(2)
        x = Tensor(rng.random((1, 1, 4, 4, 4)))
        out = pool(x)
        assert out.shape == (1, 1, 2, 2, 2)

    def test_global_average_pool(self, rng):
        pool = GlobalAveragePool()
        x = Tensor(rng.random((2, 3, 4, 5)))
        out = pool(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.data.mean(axis=(2, 3)))


class TestModuleInfrastructure:
    def test_named_parameters_nested(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer1.bias" in names

    def test_num_parameters(self, rng):
        layer = Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5), Linear(4, 4, rng=rng))
        model.eval()
        assert not model.layers[0].training
        model.train()
        assert model.layers[0].training

    def test_state_dict_roundtrip(self, rng, tmp_path):
        model = Sequential(Linear(4, 8, rng=rng), LayerNorm(8))
        original = model.state_dict()
        save_checkpoint(model, tmp_path / "ckpt.npz", metadata={"epoch": 3})
        clone = Sequential(Linear(4, 8, rng=np.random.default_rng(99)), LayerNorm(8))
        meta = load_checkpoint(clone, tmp_path / "ckpt.npz")
        assert meta["epoch"] == 3
        for key in original:
            assert np.allclose(clone.state_dict()[key], original[key])

    def test_load_state_dict_strict_mismatch(self, rng):
        model = Linear(4, 8, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((4, 8))}, strict=True)

    def test_load_state_dict_shape_mismatch(self, rng):
        model = Linear(4, 8, rng=rng)
        bad = model.state_dict()
        bad["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_zero_grad(self, rng):
        layer = Linear(3, 3, rng=rng)
        layer(Tensor(rng.random((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestOptimizers:
    def test_sgd_reduces_quadratic(self):
        param = Parameter(np.array([5.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            opt.step()
        assert abs(param.data[0]) < 1e-3

    def test_adamw_reduces_quadratic(self):
        param = Parameter(np.array([5.0]))
        opt = AdamW([param], lr=0.1, weight_decay=0.0)
        for _ in range(300):
            opt.zero_grad()
            (param * param).sum().backward()
            opt.step()
        assert abs(param.data[0]) < 1e-2

    def test_adamw_weight_decay_shrinks_params(self):
        param = Parameter(np.array([1.0]))
        opt = AdamW([param], lr=0.01, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            # zero gradient except decay
            (param * 0.0).sum().backward()
            opt.step()
        assert param.data[0] < 1.0

    def test_momentum_sgd(self):
        param = Parameter(np.array([3.0]))
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            (param * param).sum().backward()
            opt.step()
        assert abs(param.data[0]) < 0.1

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        param = Parameter(np.array([1.0, 1.0]))
        param.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([param], max_norm=1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(np.linalg.norm(param.grad), 1.0)


class TestSchedulers:
    def test_cosine_warmup_shape(self):
        from repro.nn import CosineWithWarmup
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=1.0)
        sched = CosineWithWarmup(opt, warmup_epochs=5, total_epochs=20)
        lrs = [sched.step() for _ in range(20)]
        assert lrs[0] < lrs[4]          # warmup increases
        assert np.isclose(max(lrs), 1.0)
        assert lrs[-1] < 0.05           # decays to ~0

    def test_step_decay(self):
        from repro.nn import StepDecay
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=1.0)
        sched = StepDecay(opt, step_size=10, gamma=0.1)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.1)


class TestFunctional:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.random((4, 7)))
        probs = F.softmax(logits)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)

    def test_log_softmax_consistency(self, rng):
        logits = Tensor(rng.random((3, 5)))
        assert np.allclose(F.log_softmax(logits).data,
                           np.log(F.softmax(logits).data), atol=1e-8)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.data < 1e-4

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert np.isclose(loss.data, np.log(4.0))

    def test_cross_entropy_label_smoothing(self):
        logits = Tensor(np.array([[10.0, -10.0]]))
        plain = F.cross_entropy(logits, np.array([0]))
        smoothed = F.cross_entropy(logits, np.array([0]), label_smoothing=0.1)
        assert smoothed.data > plain.data

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert np.isclose(F.mse_loss(pred, np.array([0.0, 0.0])).data, 2.5)

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 2.0], [3.0, 0.0]]))
        assert F.accuracy(logits, np.array([1, 0])) == 1.0
        assert F.accuracy(logits, np.array([0, 0])) == 0.5

    def test_softmax_gradient_numeric(self, rng):
        data = rng.random((2, 3))
        t = Tensor(data, requires_grad=True)
        (F.softmax(t) * Tensor(np.arange(6).reshape(2, 3))).sum().backward()
        analytic = t.grad.copy()
        eps = 1e-6
        numeric = np.zeros_like(data)
        weights = np.arange(6).reshape(2, 3)
        for idx in np.ndindex(*data.shape):
            plus, minus = data.copy(), data.copy()
            plus[idx] += eps
            minus[idx] -= eps
            f_plus = (F.softmax(Tensor(plus)).data * weights).sum()
            f_minus = (F.softmax(Tensor(minus)).data * weights).sum()
            numeric[idx] = (f_plus - f_minus) / (2 * eps)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-7)
