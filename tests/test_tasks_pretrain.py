"""Tests for metrics, AR/REC trainers, and the masked pre-training pipeline."""

import numpy as np
import pytest

from repro.ce import CEConfig, CodedExposureSensor, random_pattern
from repro.data import build_dataset, build_pretrain_dataset
from repro.models import SnapPixModel, ViTConfig, build_model, build_snappix_model
from repro.pretrain import (
    MaskedPretrainer,
    random_tile_masking,
    select_target_frames,
)
from repro.tasks import (
    ActionRecognitionTrainer,
    ReconstructionTrainer,
    confusion_matrix,
    measure_inference_throughput,
    psnr,
    top1_accuracy,
)


def tiny_dataset(num_frames=8, size=16):
    return build_dataset("ssv2", train_clips_per_class=3, test_clips_per_class=2,
                         num_frames=num_frames, frame_size=size)


def tiny_sensor(num_frames=8, size=16, tile=8, seed=0):
    config = CEConfig(num_slots=num_frames, tile_size=tile, frame_height=size,
                      frame_width=size)
    return CodedExposureSensor(config, random_pattern(num_frames, tile,
                                                      rng=np.random.default_rng(seed)))


class TestMetrics:
    def test_top1_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert np.isclose(top1_accuracy(logits, np.array([0, 1, 1])), 2 / 3)

    def test_top1_shape_mismatch(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros((3, 2)), np.zeros(2))

    def test_psnr_identical_is_infinite(self, rng):
        frames = rng.random((4, 8, 8))
        assert psnr(frames, frames) == float("inf")

    def test_psnr_known_value(self):
        target = np.zeros((10, 10))
        prediction = np.full((10, 10), 0.1)
        assert np.isclose(psnr(prediction, target), 20.0)

    def test_psnr_decreases_with_noise(self, rng):
        target = rng.random((4, 16, 16))
        small = psnr(target + 0.01, target)
        large = psnr(target + 0.1, target)
        assert small > large

    def test_psnr_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            psnr(rng.random((2, 4)), rng.random((4, 2)))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)


class TestActionRecognitionTrainer:
    def test_snappix_training_improves_over_chance(self):
        dataset = tiny_dataset()
        sensor = tiny_sensor()
        model = build_snappix_model("tiny", task="ar",
                                    num_classes=dataset.num_classes, image_size=16)
        trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor,
                                           epochs=6, batch_size=6, lr=2e-3)
        history = trainer.fit(evaluate_every=0)
        chance = 1.0 / dataset.num_classes
        assert history.losses[-1] < history.losses[0]
        assert trainer.evaluate("train") > chance

    def test_video_model_path(self):
        dataset = tiny_dataset()
        model = build_model("c3d", num_classes=dataset.num_classes,
                            image_size=16, num_frames=8)
        trainer = ActionRecognitionTrainer(model, dataset, sensor=None,
                                           epochs=1, batch_size=6)
        loss = trainer.train_epoch()
        assert np.isfinite(loss)
        accuracy = trainer.evaluate("test")
        assert 0.0 <= accuracy <= 1.0

    def test_history_records(self):
        dataset = tiny_dataset()
        sensor = tiny_sensor()
        model = build_snappix_model("tiny", task="ar",
                                    num_classes=dataset.num_classes, image_size=16)
        trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor,
                                           epochs=2, batch_size=6)
        history = trainer.fit(evaluate_every=1)
        assert len(history.losses) == 2
        assert len(history.test_accuracies) == 2
        assert len(history.epoch_seconds) == 2
        assert 0.0 <= history.final_test_accuracy <= 1.0
        assert history.best_test_accuracy >= history.final_test_accuracy - 1e-9

    def test_invalid_split(self):
        dataset = tiny_dataset()
        model = build_snappix_model("tiny", task="ar",
                                    num_classes=dataset.num_classes, image_size=16)
        trainer = ActionRecognitionTrainer(model, dataset, sensor=tiny_sensor(),
                                           epochs=1)
        with pytest.raises(ValueError):
            trainer.evaluate("validation")

    def test_throughput_measurement(self, rng):
        model = build_snappix_model("tiny", task="ar", num_classes=3, image_size=16)
        throughput = measure_inference_throughput(model, rng.random((1, 16, 16)),
                                                  batch_size=4, repeats=1)
        assert throughput > 0


class TestReconstructionTrainer:
    def test_training_improves_psnr(self):
        dataset = tiny_dataset()
        sensor = tiny_sensor()
        model = build_snappix_model("tiny", task="rec", image_size=16,
                                    num_output_frames=dataset.num_frames)
        trainer = ReconstructionTrainer(model, dataset, sensor, epochs=5,
                                        batch_size=6, lr=3e-3)
        initial = trainer.evaluate("test")
        history = trainer.fit(evaluate_every=0)
        assert history.losses[-1] < history.losses[0]
        assert history.final_psnr > initial

    def test_reconstruct_output_shape_and_range(self):
        dataset = tiny_dataset()
        sensor = tiny_sensor()
        model = build_snappix_model("tiny", task="rec", image_size=16,
                                    num_output_frames=dataset.num_frames)
        trainer = ReconstructionTrainer(model, dataset, sensor, epochs=1)
        recon = trainer.reconstruct(dataset.test_videos[:2])
        assert recon.shape == (2, dataset.num_frames, 16, 16)
        assert recon.min() >= 0.0 and recon.max() <= 1.0

    def test_requires_rec_model(self):
        dataset = tiny_dataset()
        model = build_snappix_model("tiny", task="ar",
                                    num_classes=dataset.num_classes, image_size=16)
        with pytest.raises(ValueError):
            ReconstructionTrainer(model, dataset, tiny_sensor())

    def test_frame_count_mismatch(self):
        dataset = tiny_dataset(num_frames=8)
        model = build_snappix_model("tiny", task="rec", image_size=16,
                                    num_output_frames=4)
        with pytest.raises(ValueError):
            ReconstructionTrainer(model, dataset, tiny_sensor())


class TestMasking:
    def test_masking_partitions_indices(self):
        keep, masked = random_tile_masking(16, 0.75, np.random.default_rng(0))
        assert len(keep) + len(masked) == 16
        assert len(np.intersect1d(keep, masked)) == 0
        assert len(masked) == 12

    def test_at_least_one_visible(self):
        keep, masked = random_tile_masking(4, 0.99, np.random.default_rng(0))
        assert len(keep) >= 1

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            random_tile_masking(8, 1.0)
        with pytest.raises(ValueError):
            random_tile_masking(0, 0.5)

    def test_select_target_frames_fraction(self):
        frames = select_target_frames(16, 0.5)
        assert len(frames) == 8
        assert frames.max() < 16

    def test_select_target_frames_full(self):
        assert np.array_equal(select_target_frames(8, 1.0), np.arange(8))

    def test_select_target_frames_invalid(self):
        with pytest.raises(ValueError):
            select_target_frames(8, 0.0)


class TestMaskedPretraining:
    def test_pretraining_reduces_loss_and_transfers(self):
        videos = build_pretrain_dataset(num_clips=18, num_frames=8, frame_size=16)
        config = ViTConfig(image_size=16, patch_size=8, dim=32, depth=1, num_heads=4)
        sensor = tiny_sensor()
        pretrainer = MaskedPretrainer(config, sensor, num_frames=8, mask_ratio=0.5,
                                      epochs=3, batch_size=6, decoder_dim=24)
        history = pretrainer.fit(videos)
        assert len(history.losses) == 3
        assert history.losses[-1] < history.losses[0]
        assert np.isfinite(history.final_loss)

        # Encoder weights transfer into a fine-tuning model without error.
        model = SnapPixModel(config, task="ar", num_classes=4)
        before = model.encoder.state_dict()["patch_embed.proj.weight"].copy()
        model.load_pretrained_encoder(pretrainer.encoder)
        after = model.encoder.state_dict()["patch_embed.proj.weight"]
        assert not np.allclose(before, after)

    def test_pretrain_step_returns_finite_loss(self):
        videos = build_pretrain_dataset(num_clips=6, num_frames=8, frame_size=16)
        config = ViTConfig(image_size=16, patch_size=8, dim=24, depth=1, num_heads=4)
        pretrainer = MaskedPretrainer(config, tiny_sensor(), num_frames=8,
                                      mask_ratio=0.5, epochs=1, decoder_dim=16)
        loss = pretrainer.pretrain_step(videos[:4])
        assert np.isfinite(loss)
        assert loss > 0
