"""Tests for the digital-domain compression baselines (repro.compression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    AutoencoderConfig,
    AutoencoderTrainer,
    CompressiveAutoencoder,
    DigitalCompressionEnergyModel,
    HuffmanCode,
    JPEGLikeCodec,
    JPEGLikeConfig,
    JPEG_LUMA_QUANT_TABLE,
    block_dequantize,
    block_quantize,
    blocks_to_image,
    blockwise_dct,
    blockwise_idct,
    dct2,
    dct_matrix,
    digital_vs_ce_saving_factor,
    frames_from_videos,
    idct2,
    image_to_blocks,
    inverse_zigzag,
    quality_scaled_table,
    rate_distortion_curve,
    run_length_decode,
    run_length_encode,
    shannon_entropy_bits,
    uniform_dequantize,
    uniform_quantize,
    video_bits_per_pixel,
    zigzag_scan,
)
from repro.tasks import psnr


# ----------------------------------------------------------------------
# DCT
# ----------------------------------------------------------------------
class TestDCT:
    def test_dct_matrix_is_orthonormal(self):
        for size in (4, 8, 16):
            matrix = dct_matrix(size)
            assert np.allclose(matrix @ matrix.T, np.eye(size), atol=1e-12)

    def test_dct_matrix_invalid_size(self):
        with pytest.raises(ValueError):
            dct_matrix(0)

    def test_dct2_idct2_roundtrip(self, rng):
        blocks = rng.random((5, 8, 8))
        assert np.allclose(idct2(dct2(blocks)), blocks, atol=1e-10)

    def test_dct2_constant_block_is_dc_only(self):
        block = np.full((8, 8), 0.5)
        coefficients = dct2(block)
        assert abs(coefficients[0, 0]) > 1.0
        assert np.allclose(coefficients.ravel()[1:], 0.0, atol=1e-12)

    def test_dct2_rejects_non_square(self):
        with pytest.raises(ValueError):
            dct2(np.zeros((4, 8)))

    def test_blockwise_roundtrip_with_padding(self, rng):
        image = rng.random((30, 29))  # not a multiple of the block size
        coefficients, padded_shape = blockwise_dct(image, block_size=8)
        recovered = blockwise_idct(coefficients, padded_shape, image.shape)
        assert recovered.shape == image.shape
        assert np.allclose(recovered, image, atol=1e-10)

    def test_image_to_blocks_counts(self, rng):
        image = rng.random((16, 24))
        blocks, padded_shape = image_to_blocks(image, 8)
        assert blocks.shape == (2 * 3, 8, 8)
        assert padded_shape == (16, 24)
        assert np.allclose(blocks_to_image(blocks, padded_shape, image.shape), image)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_block_split_merge_property(self, n_h, n_w):
        rng = np.random.default_rng(n_h * 10 + n_w)
        image = rng.random((n_h * 8, n_w * 8))
        blocks, padded = image_to_blocks(image, 8)
        assert np.allclose(blocks_to_image(blocks, padded, image.shape), image)


# ----------------------------------------------------------------------
# Quantisation
# ----------------------------------------------------------------------
class TestQuantization:
    def test_quality_50_returns_base_table(self):
        assert np.allclose(quality_scaled_table(50), JPEG_LUMA_QUANT_TABLE)

    def test_quality_scaling_monotonic(self):
        low = quality_scaled_table(10)
        high = quality_scaled_table(90)
        assert np.all(low >= high)

    def test_quality_bounds(self):
        for quality in (0, 101):
            with pytest.raises(ValueError):
                quality_scaled_table(quality)

    def test_table_entries_clipped(self):
        table = quality_scaled_table(1)
        assert table.max() <= 255.0
        assert quality_scaled_table(100).min() >= 1.0

    def test_block_quantize_roundtrip_error_bounded(self, rng):
        table = quality_scaled_table(75)
        coefficients = rng.normal(0.0, 50.0, size=(6, 8, 8))
        recovered = block_dequantize(block_quantize(coefficients, table), table)
        assert np.all(np.abs(recovered - coefficients) <= table / 2 + 1e-9)

    def test_block_quantize_shape_mismatch(self):
        with pytest.raises(ValueError):
            block_quantize(np.zeros((2, 4, 4)), JPEG_LUMA_QUANT_TABLE)

    @given(st.floats(min_value=0.01, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_uniform_quantize_error_bound(self, step):
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 1.0, size=100)
        recovered = uniform_dequantize(uniform_quantize(values, step), step)
        assert np.all(np.abs(recovered - values) <= step / 2 + 1e-12)

    def test_uniform_quantize_invalid_step(self):
        with pytest.raises(ValueError):
            uniform_quantize(np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            uniform_dequantize(np.zeros(3, dtype=np.int64), -1.0)


# ----------------------------------------------------------------------
# Entropy coding
# ----------------------------------------------------------------------
class TestEntropyCoding:
    def test_zigzag_visits_every_index_once(self):
        block = np.arange(64).reshape(8, 8)
        flat = zigzag_scan(block)
        assert sorted(flat.tolist()) == list(range(64))

    def test_zigzag_starts_with_dc_then_low_frequencies(self):
        block = np.arange(16).reshape(4, 4)
        flat = zigzag_scan(block)
        assert flat[0] == block[0, 0]
        assert set(flat[:3].tolist()) == {block[0, 0], block[0, 1], block[1, 0]}

    def test_inverse_zigzag_roundtrip(self, rng):
        block = rng.integers(-10, 10, size=(8, 8))
        assert np.array_equal(inverse_zigzag(zigzag_scan(block), 8), block)

    def test_run_length_roundtrip_sparse(self):
        data = np.array([5, 0, 0, -3, 0, 0, 0, 0, 1, 0, 0, 0])
        symbols = run_length_encode(data)
        assert np.array_equal(run_length_decode(symbols, len(data)), data)

    def test_run_length_all_zero_is_single_eob(self):
        symbols = run_length_encode(np.zeros(64, dtype=np.int64))
        assert len(symbols) == 1

    @given(st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_run_length_roundtrip_property(self, values):
        data = np.array(values, dtype=np.int64)
        symbols = run_length_encode(data)
        assert np.array_equal(run_length_decode(symbols, len(data)), data)

    def test_huffman_roundtrip(self):
        symbols = list("abracadabra")
        code = HuffmanCode.from_symbols(symbols)
        assert code.decode(code.encode(symbols)) == symbols

    def test_huffman_single_symbol_stream(self):
        code = HuffmanCode.from_symbols(["x"] * 10)
        bits = code.encode(["x"] * 10)
        assert len(bits) == 10
        assert code.decode(bits) == ["x"] * 10

    def test_huffman_unknown_symbol(self):
        code = HuffmanCode.from_symbols(["a", "b"])
        with pytest.raises(KeyError):
            code.encode(["c"])

    def test_huffman_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_symbols([])

    def test_huffman_frequent_symbols_get_short_codes(self):
        symbols = ["common"] * 90 + ["rare"] * 10
        code = HuffmanCode.from_symbols(symbols)
        assert len(code.codebook["common"]) <= len(code.codebook["rare"])

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_huffman_within_one_bit_of_entropy(self, values):
        code = HuffmanCode.from_symbols(values)
        mean_length = code.encoded_length_bits(values) / len(values)
        entropy = shannon_entropy_bits(values)
        assert mean_length <= entropy + 1.0 + 1e-9

    def test_shannon_entropy_uniform(self):
        assert shannon_entropy_bits([0, 1, 2, 3]) == pytest.approx(2.0)

    def test_shannon_entropy_empty(self):
        assert shannon_entropy_bits([]) == 0.0


# ----------------------------------------------------------------------
# JPEG-class codec
# ----------------------------------------------------------------------
class TestJPEGLikeCodec:
    @pytest.fixture
    def frame(self, rng):
        # A structured frame (smooth gradient + texture) compresses realistically.
        grid = np.linspace(0, 1, 32)
        base = np.outer(grid, grid)
        return np.clip(base + 0.1 * rng.random((32, 32)), 0.0, 1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            JPEGLikeConfig(quality=0)
        with pytest.raises(ValueError):
            JPEGLikeConfig(block_size=1)

    def test_roundtrip_reasonable_quality(self, frame):
        codec = JPEGLikeCodec(JPEGLikeConfig(quality=90))
        reconstruction, encoded = codec.transcode(frame)
        assert reconstruction.shape == frame.shape
        assert reconstruction.min() >= 0.0 and reconstruction.max() <= 1.0
        assert psnr(reconstruction, frame) > 25.0

    def test_decode_matches_header_blocks(self, frame):
        codec = JPEGLikeCodec()
        encoded = codec.encode(frame)
        assert encoded.num_blocks == (32 // 8) ** 2
        assert codec.decode(encoded).shape == frame.shape

    def test_quality_monotonic_in_distortion(self, frame):
        psnrs = []
        for quality in (10, 50, 90):
            reconstruction, _ = JPEGLikeCodec(JPEGLikeConfig(quality=quality)).transcode(frame)
            psnrs.append(psnr(reconstruction, frame))
        assert psnrs[0] <= psnrs[1] <= psnrs[2]

    def test_quality_monotonic_in_rate(self, frame):
        rates = []
        for quality in (10, 50, 90):
            encoded = JPEGLikeCodec(JPEGLikeConfig(quality=quality)).encode(frame)
            rates.append(encoded.bits_per_pixel)
        assert rates[0] <= rates[1] <= rates[2]

    def test_achieves_compression(self, frame):
        encoded = JPEGLikeCodec(JPEGLikeConfig(quality=50)).encode(frame)
        assert encoded.compression_ratio > 1.0
        assert encoded.bits_per_pixel < 8.0
        assert encoded.num_bytes == (encoded.num_bits + 7) // 8

    def test_rejects_non_2d_frame(self):
        with pytest.raises(ValueError):
            JPEGLikeCodec().encode(np.zeros((2, 8, 8)))

    def test_video_compression(self, rng):
        video = rng.random((3, 16, 16))
        codec = JPEGLikeCodec(JPEGLikeConfig(quality=75))
        reconstructions, encoded_frames = codec.compress_video(video)
        assert reconstructions.shape == video.shape
        assert len(encoded_frames) == 3
        assert video_bits_per_pixel(encoded_frames) > 0.0

    def test_video_requires_3d(self):
        with pytest.raises(ValueError):
            JPEGLikeCodec().compress_video(np.zeros((8, 8)))

    def test_entropy_estimate_below_actual_bits(self, frame):
        codec = JPEGLikeCodec(JPEGLikeConfig(quality=50))
        encoded = codec.encode(frame)
        estimate = codec.entropy_estimate_bits(frame)
        # Huffman is within one bit/symbol of the entropy bound.
        assert estimate <= encoded.num_bits + encoded.num_blocks * 64

    def test_rate_distortion_curve(self, frame):
        points = rate_distortion_curve(frame, qualities=(25, 75))
        assert len(points) == 2
        assert points[0].bits_per_pixel <= points[1].bits_per_pixel
        assert points[0].psnr_db <= points[1].psnr_db
        assert set(points[0].as_dict()) == {"quality", "bits_per_pixel",
                                            "psnr_db", "compression_ratio"}

    def test_non_default_block_size(self, rng):
        frame = rng.random((16, 16))
        codec = JPEGLikeCodec(JPEGLikeConfig(block_size=4, quality=50))
        reconstruction, encoded = codec.transcode(frame)
        assert reconstruction.shape == frame.shape
        assert encoded.num_blocks == 16

    def test_video_bits_per_pixel_empty(self):
        assert video_bits_per_pixel([]) == 0.0


# ----------------------------------------------------------------------
# Compressive autoencoder
# ----------------------------------------------------------------------
class TestCompressiveAutoencoder:
    @pytest.fixture
    def frames(self, rng):
        grid = np.linspace(0, 1, 16)
        base = np.outer(grid, grid)
        return np.clip(base + 0.2 * rng.random((12, 16, 16)), 0.0, 1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoencoderConfig(latent_dim=0)
        with pytest.raises(ValueError):
            AutoencoderConfig(quant_step=0.0)

    def test_nominal_compression_ratio(self):
        config = AutoencoderConfig(patch_size=8, latent_dim=8)
        assert config.nominal_compression_ratio == pytest.approx(8.0)

    def test_forward_shape(self, frames):
        model = CompressiveAutoencoder(AutoencoderConfig(patch_size=8, latent_dim=4))
        prediction = model(frames[:2])
        assert prediction.shape == (2, 4, 64)

    def test_reconstruct_range_and_shape(self, frames):
        model = CompressiveAutoencoder(AutoencoderConfig(patch_size=8, latent_dim=4))
        reconstruction = model.reconstruct(frames[:3])
        assert reconstruction.shape == (3, 16, 16)
        assert reconstruction.min() >= 0.0 and reconstruction.max() <= 1.0

    def test_quantize_ste_is_identity_for_gradient(self, frames):
        model = CompressiveAutoencoder()
        latents = model.encode(frames[:1])
        quantized = model.quantize_ste(latents)
        step = model.config.quant_step
        assert np.all(np.abs(quantized.data - latents.data) <= step / 2 + 1e-12)

    def test_training_reduces_loss(self, frames):
        model = CompressiveAutoencoder(AutoencoderConfig(patch_size=8, latent_dim=8,
                                                         hidden_dim=32))
        trainer = AutoencoderTrainer(model, lr=5e-3, epochs=8, batch_size=6, seed=0)
        history = trainer.fit(frames)
        assert history.final_loss < history.losses[0]
        assert len(history.losses) == 8

    def test_evaluate_psnr_finite(self, frames):
        model = CompressiveAutoencoder(AutoencoderConfig(patch_size=8, latent_dim=8))
        trainer = AutoencoderTrainer(model, epochs=1, seed=0)
        trainer.fit(frames)
        assert np.isfinite(trainer.evaluate_psnr(frames))

    def test_measured_rate_positive_and_ratio_reasonable(self, frames):
        model = CompressiveAutoencoder(AutoencoderConfig(patch_size=8, latent_dim=4))
        rate = model.measured_rate_bits_per_pixel(frames)
        assert rate >= 0.0
        assert model.measured_compression_ratio(frames) >= 1.0

    def test_latent_symbols_are_integers(self, frames):
        model = CompressiveAutoencoder()
        symbols = model.latent_symbols(frames[:2])
        assert symbols.dtype == np.int64

    def test_frames_from_videos(self, rng):
        videos = rng.random((3, 4, 8, 8))
        frames = frames_from_videos(videos)
        assert frames.shape == (12, 8, 8)
        with pytest.raises(ValueError):
            frames_from_videos(rng.random((4, 8, 8)))


# ----------------------------------------------------------------------
# Digital compression energy model
# ----------------------------------------------------------------------
class TestDigitalCompressionEnergy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DigitalCompressionEnergyModel(32, 32, 16, compression_ratio=0.0)
        with pytest.raises(ValueError):
            DigitalCompressionEnergyModel(32, 32, 0, compression_ratio=4.0)

    def test_report_components_positive(self):
        model = DigitalCompressionEnergyModel(112, 112, 16, compression_ratio=16.0)
        report = model.report("passive_wifi")
        assert report.sensor_energy > 0
        assert report.compute_energy > 0
        assert report.transmission_energy > 0
        assert report.total == pytest.approx(report.sensor_energy
                                             + report.compute_energy
                                             + report.transmission_energy)

    def test_in_sensor_ce_always_wins(self):
        # Even at an identical compression ratio, digital compression pays
        # the full read-out plus the encoder energy, so CE must win.
        comparison = DigitalCompressionEnergyModel(
            112, 112, 16, compression_ratio=16.0).compare_with_in_sensor_ce()
        assert comparison.saving_factor > 1.0

    def test_saving_factor_wrapper_matches_model(self):
        factor = digital_vs_ce_saving_factor(112, 112, 16, 16.0, "passive_wifi")
        model = DigitalCompressionEnergyModel(112, 112, 16, 16.0)
        assert factor == pytest.approx(model.compare_with_in_sensor_ce().saving_factor)

    def test_higher_ratio_reduces_transmission_only(self):
        low = DigitalCompressionEnergyModel(64, 64, 8, compression_ratio=4.0).report()
        high = DigitalCompressionEnergyModel(64, 64, 8, compression_ratio=32.0).report()
        assert high.transmission_energy < low.transmission_energy
        assert high.sensor_energy == pytest.approx(low.sensor_energy)
        assert high.compute_energy == pytest.approx(low.compute_energy)

    def test_breakdown_keys(self):
        breakdown = DigitalCompressionEnergyModel(64, 64, 8, 10.0).breakdown()
        assert set(breakdown) == {"sensor_energy_j", "compression_energy_j",
                                  "transmission_energy_j", "total_energy_j",
                                  "compression_ratio"}

    def test_lora_dominated_by_transmission(self):
        model = DigitalCompressionEnergyModel(112, 112, 16, compression_ratio=16.0)
        report = model.report("lora_backscatter")
        assert report.transmission_energy > report.sensor_energy
