"""Tests for the pluggable compute-backend layer (``repro.nn.backend``).

Covers the registry (selection precedence, context scoping, the numexpr
graceful fallback), op-level bit-identity of the threaded backend
against the NumPy reference (forced into its parallel paths so the
chunked kernels are exercised even on single-core hosts), whole-model
logits/argmax equivalence across every Table I model, an N-step float32
training-trajectory comparison, the quantized inference path under the
threaded backend, the nested-parallelism thread budget, and the knob
threading through ``PipelineConfig`` / the runtime stages / the CLI.
"""

import os

import numpy as np
import pytest

from repro import nn
from repro.core.bench import _environment
from repro.core.config import PipelineConfig
from repro.models import build_model, model_input_kind, model_names
from repro.nn import (
    AdamW,
    Backend,
    Tensor,
    available_backends,
    clip_grad_norm,
    create_backend,
    get_backend,
    no_grad,
    quantize_model,
    set_backend,
    use_backend,
)
from repro.nn import functional as F
from repro.nn.backend import BACKEND_ENV_VAR, NUMEXPR_AVAILABLE
from repro.nn.backend.numexpr_backend import NumexprBackend
from repro.nn.backend.threaded import ThreadedBackend
from repro.runtime.parallel import (
    active_worker_count,
    backend_thread_budget,
    resolve_workers,
    worker_scope,
)

#: Every system compared in Table I (plus the Sec. VI-D downsample
#: baseline) — the whole-model equivalence gates run on all of them.
TABLE1_MODELS = tuple(model_names())


def forced_threaded(workers: int = 4) -> ThreadedBackend:
    """A threaded backend that parallelises even tiny single-core work.

    ``workers=4`` fixes the budget independent of the host's core count
    and the thresholds drop to one element, so the chunked code paths
    are exercised deterministically in CI.
    """
    backend = ThreadedBackend(workers=workers)
    backend.min_parallel_elements = 1
    backend.min_parallel_flops = 1
    return backend


def _example_input(name: str, rng, batch: int = 4, image_size: int = 16,
                   num_frames: int = 8) -> np.ndarray:
    if model_input_kind(name) == "ce":
        return rng.random((batch, image_size, image_size))
    return rng.random((batch, num_frames, image_size, image_size))


# ----------------------------------------------------------------------
# Registry / selection
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ["numexpr", "numpy", "numpy_ref",
                                        "threaded"]

    def test_active_backend_matches_environment(self):
        # Tier-1 may legitimately run under REPRO_BACKEND=threaded (the
        # CI backend job), so the assertion resolves the same precedence
        # the registry documents: env var if valid, else numpy.
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        expected = env if env in available_backends() else "numpy"
        assert get_backend().name == create_backend(expected).name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("cuda")

    def test_set_backend_returns_previous(self):
        previous = set_backend("threaded")
        try:
            assert get_backend().name == "threaded"
        finally:
            assert set_backend(previous).name == "threaded"

    def test_use_backend_scopes_and_restores(self):
        before = get_backend()
        with use_backend("threaded") as active:
            assert isinstance(active, ThreadedBackend)
            assert get_backend() is active
        assert get_backend() is before

    def test_use_backend_accepts_instances(self):
        configured = forced_threaded(workers=2)
        with use_backend(configured):
            assert get_backend() is configured
        assert get_backend() is not configured

    def test_numpy_ref_is_reference_alias(self):
        assert type(create_backend("numpy_ref")) is Backend
        assert type(create_backend("numpy")) is Backend

    def test_numexpr_backend_degrades_gracefully(self):
        if NUMEXPR_AVAILABLE:
            backend = create_backend("numexpr")
        else:
            with pytest.warns(RuntimeWarning, match="numexpr is not"):
                backend = create_backend("numexpr")
        # Installed or not, the fused entry points must agree with the
        # reference kernels.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 16))
        reference = Backend()
        np.testing.assert_allclose(backend.exp(x), reference.exp(x),
                                   rtol=1e-12)
        np.testing.assert_allclose(backend.tanh(x), reference.tanh(x),
                                   rtol=1e-12)
        np.testing.assert_allclose(
            backend.fused_softmax(x.copy()), reference.fused_softmax(x.copy()),
            rtol=1e-12)
        ref_fwd = reference.gelu_forward(x)
        got_fwd = backend.gelu_forward(x)
        for got, want in zip(got_fwd, ref_fwd):
            np.testing.assert_allclose(got, want, rtol=1e-12)
        grad = rng.normal(size=x.shape)
        np.testing.assert_allclose(
            backend.gelu_backward(grad, x, got_fwd[1], got_fwd[2]),
            reference.gelu_backward(grad, x, ref_fwd[1], ref_fwd[2]),
            rtol=1e-12)

    def test_pipeline_config_validates_backend(self):
        assert PipelineConfig(backend="threaded").backend == "threaded"
        with pytest.raises(ValueError, match="backend must be one of"):
            PipelineConfig(backend="cuda")


# ----------------------------------------------------------------------
# Op-level equivalence: threaded (forced parallel) vs reference
# ----------------------------------------------------------------------
class TestThreadedOpBitIdentity:
    """The threaded backend chunks only data partitioning, so every op
    with per-row reductions / disjoint output slices must be
    *bit-identical* to the reference; 2-D GEMM is the one documented
    tolerance-class exception (BLAS micro-kernel selection varies with
    the row-block size)."""

    reference = Backend()

    def test_elementwise_with_out(self, rng):
        threaded = forced_threaded()
        a = rng.normal(size=(16, 7))
        b = rng.normal(size=(16, 7))
        for op in ("add", "subtract", "multiply", "divide"):
            want = getattr(self.reference, op)(a, b, out=np.empty_like(a))
            got = getattr(threaded, op)(a, b, out=np.empty_like(a))
            np.testing.assert_array_equal(got, want)

    def test_elementwise_broadcasting_operands_pass_whole(self, rng):
        threaded = forced_threaded()
        a = rng.normal(size=(16, 7))
        row = rng.normal(size=(7,))           # lower ndim: never sliced
        scalar = 2.5
        col = rng.normal(size=(1, 7))         # leading-dim mismatch
        for other in (row, scalar, col):
            want = self.reference.multiply(a, other, out=np.empty_like(a))
            got = threaded.multiply(a, other, out=np.empty_like(a))
            np.testing.assert_array_equal(got, want)

    def test_unary_ufuncs(self, rng):
        threaded = forced_threaded()
        x = np.abs(rng.normal(size=(16, 9))) + 0.1
        for op in ("exp", "tanh", "sqrt", "rint"):
            np.testing.assert_array_equal(getattr(threaded, op)(x),
                                          getattr(self.reference, op)(x))

    def test_fused_softmax_bit_identical(self, rng):
        threaded = forced_threaded()
        scores = rng.normal(size=(8, 3, 5, 5))
        np.testing.assert_array_equal(
            threaded.fused_softmax(scores.copy(), axis=-1),
            self.reference.fused_softmax(scores.copy(), axis=-1))

    def test_fused_softmax_axis0_falls_back_serial(self, rng):
        threaded = forced_threaded()
        scores = rng.normal(size=(6, 4))
        np.testing.assert_array_equal(
            threaded.fused_softmax(scores.copy(), axis=0),
            self.reference.fused_softmax(scores.copy(), axis=0))

    def test_layer_norm_core_bit_identical(self, rng):
        threaded = forced_threaded()
        data = rng.normal(size=(10, 6, 12))
        want_norm, want_std = self.reference.layer_norm_core(data, 1e-6)
        got_norm, got_std = threaded.layer_norm_core(data, 1e-6)
        np.testing.assert_array_equal(got_norm, want_norm)
        np.testing.assert_array_equal(got_std, want_std)

    def test_gelu_forward_backward_bit_identical(self, rng):
        threaded = forced_threaded()
        x = rng.normal(size=(12, 8)).astype(np.float32)
        grad = rng.normal(size=(12, 8)).astype(np.float32)
        want = self.reference.gelu_forward(x)
        got = threaded.gelu_forward(x)
        for got_part, want_part in zip(got, want):
            np.testing.assert_array_equal(got_part, want_part)
        np.testing.assert_array_equal(
            threaded.gelu_backward(grad, x, got[1], got[2]),
            self.reference.gelu_backward(grad, x, want[1], want[2]))

    def test_batched_matmul_bit_identical(self, rng):
        threaded = forced_threaded()
        a = rng.normal(size=(8, 5, 6))
        b = rng.normal(size=(8, 6, 4))
        np.testing.assert_array_equal(threaded.matmul(a, b),
                                      self.reference.matmul(a, b))
        # Broadcast right operand (shared weight across the batch).
        w = rng.normal(size=(6, 4))
        np.testing.assert_array_equal(threaded.matmul(a, w),
                                      self.reference.matmul(a, w))

    def test_2d_matmul_tolerance_class(self, rng):
        threaded = forced_threaded()
        a = rng.normal(size=(32, 24))
        b = rng.normal(size=(24, 10))
        np.testing.assert_allclose(threaded.matmul(a, b),
                                   self.reference.matmul(a, b),
                                   rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("kernel,stride,padding", [
        ((3, 3), (1, 1), (1, 1)),
        ((2, 2), (2, 2), (0, 0)),
    ])
    def test_im2col2d_col2im2d_bit_identical(self, kernel, stride, padding,
                                             rng):
        threaded = forced_threaded()
        x = rng.normal(size=(6, 3, 8, 8))
        want_cols, want_geom = self.reference.im2col2d(x, kernel, stride,
                                                       padding)
        got_cols, got_geom = threaded.im2col2d(x, kernel, stride, padding)
        assert got_geom == want_geom
        np.testing.assert_array_equal(got_cols, want_cols)
        np.testing.assert_array_equal(
            threaded.col2im2d(got_cols, x.shape, kernel, stride, padding),
            self.reference.col2im2d(want_cols, x.shape, kernel, stride,
                                    padding))

    def test_im2col3d_col2im3d_bit_identical(self, rng):
        threaded = forced_threaded()
        kernel, stride, padding = (2, 3, 3), (1, 1, 1), (0, 1, 1)
        x = rng.normal(size=(4, 2, 5, 8, 8))
        want_cols, want_geom = self.reference.im2col3d(x, kernel, stride,
                                                       padding)
        got_cols, got_geom = threaded.im2col3d(x, kernel, stride, padding)
        assert got_geom == want_geom
        np.testing.assert_array_equal(got_cols, want_cols)
        np.testing.assert_array_equal(
            threaded.col2im3d(got_cols, x.shape, kernel, stride, padding),
            self.reference.col2im3d(want_cols, x.shape, kernel, stride,
                                    padding))


# ----------------------------------------------------------------------
# Whole-model equivalence across the Table I systems
# ----------------------------------------------------------------------
class TestModelEquivalence:
    @pytest.mark.parametrize("name", TABLE1_MODELS)
    def test_threaded_logits_match_reference(self, name, rng):
        model = build_model(name, num_classes=5, image_size=16, num_frames=8,
                            seed=0)
        x = _example_input(name, rng)
        with no_grad():
            with use_backend("numpy_ref"):
                logits_ref = model(x).data.copy()
            with use_backend(forced_threaded()):
                logits_thr = model(x).data.copy()
        np.testing.assert_allclose(logits_thr, logits_ref, rtol=1e-9,
                                   atol=1e-9)
        assert np.array_equal(logits_ref.argmax(axis=-1),
                              logits_thr.argmax(axis=-1))

    @pytest.mark.parametrize("name", TABLE1_MODELS)
    def test_numexpr_logits_match_reference(self, name, rng):
        model = build_model(name, num_classes=5, image_size=16, num_frames=8,
                            seed=0)
        x = _example_input(name, rng)
        with no_grad():
            with use_backend("numpy_ref"):
                logits_ref = model(x).data.copy()
            with use_backend(NumexprBackend()):
                logits_ne = model(x).data.copy()
        np.testing.assert_allclose(logits_ne, logits_ref, rtol=1e-9,
                                   atol=1e-9)
        assert np.array_equal(logits_ref.argmax(axis=-1),
                              logits_ne.argmax(axis=-1))

    def test_fast_path_matches_graph_path_under_threaded(self, rng):
        """The PR-3 fast==graph gate holds on the threaded backend too."""
        model = build_model("snappix_tiny", num_classes=4, image_size=16,
                            seed=0)
        model.eval()
        x = rng.random((4, 16, 16))
        with use_backend(forced_threaded()):
            with no_grad():
                fast = model(x).data
            graph = model(x).data
        np.testing.assert_allclose(fast, graph, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# N-step training-trajectory equivalence (PR-5 idiom)
# ----------------------------------------------------------------------
class TestTrainingTrajectoryEquivalence:
    def _train(self, backend, steps=6, seed=0):
        rng = np.random.default_rng(seed)
        model = build_model("snappix_tiny", num_classes=4, image_size=16,
                            seed=seed).to(np.float32)
        x = rng.random((8, 16, 16)).astype(np.float32)
        labels = rng.integers(0, 4, size=8)
        eval_x = rng.random((8, 16, 16)).astype(np.float32)
        optimizer = AdamW(model.parameters(), lr=2e-3)
        losses = []
        with use_backend(backend):
            for _ in range(steps):
                optimizer.zero_grad()
                loss = F.cross_entropy(model(x), labels)
                loss.backward()
                clip_grad_norm(model.parameters(), 1.0)
                optimizer.step()
                losses.append(float(loss.data))
            model.eval()
            with no_grad():
                predictions = model(eval_x).data.argmax(axis=-1)
        return np.asarray(losses), predictions

    def test_threaded_trajectory_matches_reference(self):
        losses_ref, pred_ref = self._train("numpy_ref")
        losses_thr, pred_thr = self._train(forced_threaded())
        scale = np.max(np.abs(losses_ref))
        # Only the 2-D GEMM row chunking is tolerance-class, so the
        # float32 trajectories stay far tighter than the float32-vs-
        # float64 gate (1e-3).
        assert np.max(np.abs(losses_ref - losses_thr)) / scale < 1e-4
        assert np.array_equal(pred_ref, pred_thr)

    def test_numexpr_trajectory_matches_reference(self):
        losses_ref, pred_ref = self._train("numpy_ref")
        losses_ne, pred_ne = self._train(NumexprBackend())
        scale = np.max(np.abs(losses_ref))
        assert np.max(np.abs(losses_ref - losses_ne)) / scale < 1e-4
        assert np.array_equal(pred_ref, pred_ne)


# ----------------------------------------------------------------------
# Quantized inference path under the threaded backend
# ----------------------------------------------------------------------
class TestQuantizedUnderThreaded:
    def test_int8_logits_match_reference_backend(self, rng):
        model = build_model("snappix_tiny", num_classes=4, image_size=16,
                            seed=0).to(np.float32)
        calibration = rng.random((8, 16, 16)).astype(np.float32)
        quantize_model(model, calibration)
        x = rng.random((8, 16, 16)).astype(np.float32)
        with no_grad():
            with use_backend("numpy_ref"):
                logits_ref = model(x).data.copy()
            with use_backend(forced_threaded()):
                logits_thr = model(x).data.copy()
        np.testing.assert_allclose(logits_thr, logits_ref, rtol=1e-5,
                                   atol=1e-5)
        assert np.array_equal(logits_ref.argmax(axis=-1),
                              logits_thr.argmax(axis=-1))


# ----------------------------------------------------------------------
# Nested-parallelism thread budget
# ----------------------------------------------------------------------
class TestThreadBudget:
    def test_no_scope_means_one_worker(self):
        assert active_worker_count() == 1

    def test_worker_scope_nests_multiplicatively(self):
        with worker_scope(4):
            assert active_worker_count() == 4
            with worker_scope(2):
                assert active_worker_count() == 8
            assert active_worker_count() == 4
        assert active_worker_count() == 1

    def test_budget_divides_by_active_workers(self):
        # Budget caps at requested/outer instead of multiplying: four
        # outer DAG workers each running a 4-thread backend would be 16
        # threads; the budget pins each to one.
        assert backend_thread_budget(4) == 4
        with worker_scope(4):
            assert backend_thread_budget(4) == 1
        with worker_scope(2):
            assert backend_thread_budget(4) == 2

    def test_budget_never_below_one(self):
        with worker_scope(64):
            assert backend_thread_budget(4) == 1
            assert backend_thread_budget(0) == 1

    def test_budget_default_resolves_cpu_count(self):
        assert backend_thread_budget(0) == resolve_workers(0)

    def test_threaded_backend_serialises_inside_saturated_scope(self, rng):
        """Inside a scope that already owns every core, the threaded
        backend must degrade to serial execution (budget 1 → no chunk
        plan) rather than oversubscribe."""
        backend = forced_threaded(workers=4)
        with worker_scope(4):
            assert backend._plan(16, 1 << 30) is None
        assert backend._plan(16, 1 << 30) is not None


# ----------------------------------------------------------------------
# Knob threading: stages, CLI, bench environment
# ----------------------------------------------------------------------
class TestBackendKnob:
    def test_stage_signatures_include_backend(self):
        from repro.runtime.stages import (
            finetune_stage_from_config,
            pattern_stage_from_config,
            pretrain_stage_from_config,
        )
        config = PipelineConfig(backend="threaded")
        for stage in (pattern_stage_from_config(config),
                      pretrain_stage_from_config(config),
                      finetune_stage_from_config(config, "ar")):
            assert stage.backend == "threaded"
            assert stage.signature()["backend"] == "threaded"

    def test_backend_switch_changes_stage_signature(self):
        from repro.runtime.stages import pattern_stage_from_config
        base = pattern_stage_from_config(PipelineConfig())
        threaded = pattern_stage_from_config(PipelineConfig(
            backend="threaded"))
        assert base.signature() != threaded.signature()

    def test_cli_accepts_backend_flag(self):
        from repro.core.cli import build_parser
        parser = build_parser()
        for argv in (["pipeline", "--backend", "threaded"],
                     ["runtime", "--backend", "numpy_ref"],
                     ["bench", "--quick", "--backend", "threaded"],
                     ["serve", "--smoke", "--backend", "numexpr"]):
            assert parser.parse_args(argv).backend == argv[-1]

    def test_cli_resolve_backend_precedence(self, monkeypatch):
        from repro.core.cli import _resolve_backend
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert _resolve_backend("") == "numpy"
        assert _resolve_backend("threaded") == "threaded"
        monkeypatch.setenv(BACKEND_ENV_VAR, "numexpr")
        assert _resolve_backend("") == "numexpr"
        assert _resolve_backend("threaded") == "threaded"
        monkeypatch.setenv(BACKEND_ENV_VAR, "not-a-backend")
        assert _resolve_backend("") == "numpy"

    def test_bench_environment_records_backend_and_host(self):
        env = _environment()
        assert env["backend"] == get_backend().name
        assert env["cpu_count"] == os.cpu_count()
        assert isinstance(env["thread_env"], dict)
        for var, value in env["thread_env"].items():
            assert os.environ[var] == value

    def test_system_result_records_backend(self):
        from repro.core.system import SnapPixResult
        result = SnapPixResult(config=PipelineConfig(backend="threaded"))
        assert result.as_dict()["backend"] == "threaded"
