"""Checkpoint round-trip coverage for every Table I model.

``save_checkpoint``/``load_checkpoint`` must reproduce each registry
model bit-for-bit (parameters and forward outputs), carry JSON metadata
both ways, honour ``strict`` semantics on mismatched state, and support
``strict=False`` partial loads (e.g. restoring only an encoder into a
larger model) — the contract the serving registry's warm loads build on.
"""

import numpy as np
import pytest

from repro.models import build_model, model_input_kind, model_names
from repro.nn import (
    load_checkpoint,
    no_grad,
    read_checkpoint_metadata,
    save_checkpoint,
)

ROUNDTRIP_MODELS = ("snappix_s", "snappix_b", "videomae_st", "c3d")
GEOMETRY = {"num_classes": 5, "image_size": 16, "num_frames": 8}


def _example_input(name, rng):
    if model_input_kind(name) == "ce":
        return rng.random((2, GEOMETRY["image_size"], GEOMETRY["image_size"]))
    return rng.random((2, GEOMETRY["num_frames"], GEOMETRY["image_size"],
                       GEOMETRY["image_size"]))


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("name", ROUNDTRIP_MODELS)
    def test_parameters_metadata_and_outputs_roundtrip(self, name, rng,
                                                       tmp_path):
        model = build_model(name, seed=1, **GEOMETRY)
        metadata = {"model": name, "epoch": 3, "accuracy": 0.75,
                    "nested": {"tags": ["serving", "table1"]}}
        path = tmp_path / f"{name}.npz"
        save_checkpoint(model, path, metadata=metadata)

        # A differently seeded clone must converge to identical state.
        restored = build_model(name, seed=2, **GEOMETRY)
        loaded_metadata = load_checkpoint(restored, path)
        assert loaded_metadata == metadata
        assert read_checkpoint_metadata(path) == metadata

        for (key, p1), (_, p2) in zip(model.named_parameters(),
                                      restored.named_parameters()):
            assert np.array_equal(p1.data, p2.data), key

        model.eval()
        restored.eval()
        x = _example_input(name, rng)
        with no_grad():
            assert np.array_equal(model(x).data, restored(x).data)

    @pytest.mark.parametrize("name", ROUNDTRIP_MODELS)
    def test_default_metadata_is_empty_dict(self, name, tmp_path):
        model = build_model(name, seed=0, **GEOMETRY)
        path = tmp_path / "bare.npz"
        save_checkpoint(model, path)
        assert load_checkpoint(build_model(name, seed=4, **GEOMETRY),
                               path) == {}

    def test_strict_load_rejects_mismatched_model(self, tmp_path):
        small = build_model("snappix_s", seed=0, **GEOMETRY)
        path = tmp_path / "small.npz"
        save_checkpoint(small, path)
        other = build_model("c3d", seed=0, **GEOMETRY)
        with pytest.raises(KeyError):
            load_checkpoint(other, path, strict=True)

    @pytest.mark.parametrize("name", ROUNDTRIP_MODELS)
    def test_strict_false_partial_load(self, name, tmp_path):
        """A partial checkpoint restores what it has, leaves the rest."""
        model = build_model(name, seed=1, **GEOMETRY)
        path = tmp_path / "full.npz"
        save_checkpoint(model, path)

        target = build_model(name, seed=9, **GEOMETRY)
        param_names = [key for key, _ in target.named_parameters()]
        keep = set(param_names[: len(param_names) // 2])
        # Rewrite the checkpoint with only the first half of the state.
        state = {key: value for key, value in model.state_dict().items()
                 if key in keep}
        partial_path = tmp_path / "partial.npz"
        np.savez(partial_path, **state)

        with pytest.raises(KeyError):
            load_checkpoint(target, partial_path, strict=True)

        before = {key: np.array(p.data, copy=True)
                  for key, p in target.named_parameters()}
        load_checkpoint(target, partial_path, strict=False)
        for key, param in target.named_parameters():
            if key in keep:
                assert np.array_equal(param.data,
                                      model.state_dict()[key]), key
            else:
                assert np.array_equal(param.data, before[key]), key

    def test_every_registry_model_is_checkpointable(self, tmp_path):
        """Smoke: no registry model is left out of serialization support."""
        for name in model_names():
            model = build_model(name, seed=0, **GEOMETRY)
            if not model.parameters():
                continue  # parameter-free baselines have no state to save
            path = tmp_path / f"{name}.npz"
            save_checkpoint(model, path, metadata={"name": name})
            clone = build_model(name, seed=3, **GEOMETRY)
            assert load_checkpoint(clone, path)["name"] == name
