"""Tests for the fast training engine.

Covers the fused kernels (single-pass attention softmax, fused
log-softmax, fused LayerNorm backward, fused attention core, in-place
residual add), the im2col column-buffer pool, the allocation-free
in-place optimisers, the NEP-50 gradient dtype audit, and the
float32-vs-float64 training equivalence suite (N-step loss curves
within tolerance, identical eval argmax after short training).
"""

import numpy as np
import pytest

from repro.ce import CEConfig, DecorrelationPatternLearner
from repro.data import build_dataset
from repro.models import build_model, build_snappix_model
from repro.nn import (
    AdamW,
    ColumnBufferPool,
    Conv2d,
    Conv3d,
    CosineWithWarmup,
    LayerNorm,
    MultiHeadAttention,
    Parameter,
    SGD,
    Tensor,
    clip_grad_norm,
    fused_attention_core,
    no_grad,
    residual_add,
)
from repro.nn import functional as F
from repro.pretrain import MaskedPretrainer
from repro.tasks import ActionRecognitionTrainer


def _numeric_grad(func, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar ``func`` over array ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


# ----------------------------------------------------------------------
# Fused softmax / log-softmax
# ----------------------------------------------------------------------
class TestFusedSoftmax:
    def test_kernel_matches_reference(self, rng):
        scores = rng.normal(size=(2, 3, 4, 4))
        expected = np.exp(scores - scores.max(axis=-1, keepdims=True))
        expected /= expected.sum(axis=-1, keepdims=True)
        out = F.fused_softmax(scores.copy(), axis=-1)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_kernel_in_place_shares_buffer(self, rng):
        scores = rng.normal(size=(3, 5))
        result = F.fused_softmax(scores, axis=-1, out=scores)
        assert result is scores
        np.testing.assert_allclose(result.sum(axis=-1), 1.0)

    def test_single_backward_node(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        out = F.softmax(x)
        # Fused: one node whose only parent is the input, not an
        # exp/sum/div chain.
        assert out._parents == (x,)

    def test_softmax_gradient_numeric(self, rng):
        data = rng.normal(size=(2, 5))
        weights = rng.normal(size=(2, 5))
        x = Tensor(data, requires_grad=True)
        (F.softmax(x) * Tensor(weights)).sum().backward()
        numeric = _numeric_grad(
            lambda: float((F.fused_softmax(data) * weights).sum()), data)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-8)

    def test_log_softmax_gradient_numeric(self, rng):
        data = rng.normal(size=(3, 4))
        weights = rng.normal(size=(3, 4))
        x = Tensor(data, requires_grad=True)
        (F.log_softmax(x) * Tensor(weights)).sum().backward()

        def reference():
            shifted = data - data.max(axis=-1, keepdims=True)
            lse = np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
            return float(((shifted - lse) * weights).sum())

        numeric = _numeric_grad(reference, data)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-5, atol=1e-8)

    def test_float32_gradients_stay_float32(self, rng):
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32),
                   requires_grad=True)
        F.softmax(x).sum().backward()
        assert x.grad.dtype == np.float32
        x.zero_grad()
        F.log_softmax(x).sum().backward()
        assert x.grad.dtype == np.float32

    def test_no_grad_is_graph_free(self, rng):
        with no_grad():
            out = F.softmax(Tensor(rng.normal(size=(2, 4)),
                                   requires_grad=True))
        assert out._parents == ()
        assert out._backward is None


# ----------------------------------------------------------------------
# Fused LayerNorm
# ----------------------------------------------------------------------
class TestFusedLayerNorm:
    def test_forward_matches_no_grad_path_bitwise(self, rng):
        norm = LayerNorm(8)
        x = rng.normal(size=(3, 5, 8))
        train_out = norm(Tensor(x, requires_grad=True)).data
        with no_grad():
            eval_out = norm(Tensor(x)).data
        assert np.array_equal(train_out, eval_out)

    def test_gradient_numeric(self, rng):
        dim = 6
        data = rng.normal(size=(4, dim))
        weight = rng.normal(size=dim)
        bias = rng.normal(size=dim)
        x = Tensor(data.copy(), requires_grad=True)
        w = Parameter(weight.copy())
        b = Parameter(bias.copy())
        (F.layer_norm(x, w, b) * F.layer_norm(x, w, b)).sum().backward()

        def reference():
            centred = data - data.mean(axis=-1, keepdims=True)
            variance = (centred * centred).mean(axis=-1, keepdims=True)
            normalised = centred / np.sqrt(variance + 1e-6)
            out = normalised * weight + bias
            return float((out * out).sum())

        numeric = _numeric_grad(reference, data)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-7)
        numeric_w = _numeric_grad(reference, weight)
        np.testing.assert_allclose(w.grad, numeric_w, rtol=1e-4, atol=1e-7)
        numeric_b = _numeric_grad(reference, bias)
        np.testing.assert_allclose(b.grad, numeric_b, rtol=1e-4, atol=1e-7)

    def test_single_backward_node(self, rng):
        norm = LayerNorm(4)
        out = norm(Tensor(rng.normal(size=(2, 4)), requires_grad=True))
        assert len(out._parents) == 3  # (x, weight, bias) — one fused node

    def test_float32_stays_float32_through_backward(self, rng):
        norm = LayerNorm(8)
        norm.to(np.float32)
        x = Tensor(rng.normal(size=(2, 8)).astype(np.float32),
                   requires_grad=True)
        norm(x).sum().backward()
        assert x.grad.dtype == np.float32
        assert norm.weight.grad.dtype == np.float32
        assert norm.bias.grad.dtype == np.float32


# ----------------------------------------------------------------------
# Fused attention core
# ----------------------------------------------------------------------
class TestFusedAttention:
    def _composed_reference(self, qkv_data, num_heads, scale):
        """The historical composed attention graph, for equivalence."""
        qkv = Tensor(qkv_data.copy(), requires_grad=True)
        batch, tokens, three_dim = qkv.shape
        head_dim = three_dim // 3 // num_heads
        split = qkv.reshape(batch, tokens, 3, num_heads, head_dim)
        split = split.transpose(2, 0, 3, 1, 4)
        q, k, v = split[0], split[1], split[2]
        scores = (q @ k.swapaxes(-1, -2)) * scale
        attn = F.softmax(scores, axis=-1)
        out = attn @ v
        return qkv, out.transpose(0, 2, 1, 3).reshape(batch, tokens,
                                                      three_dim // 3)

    def test_forward_matches_composed_graph(self, rng):
        qkv_data = rng.normal(size=(2, 5, 24))
        fused = fused_attention_core(Tensor(qkv_data), 2, 0.5)
        _, composed = self._composed_reference(qkv_data, 2, 0.5)
        np.testing.assert_allclose(fused.data, composed.data, rtol=1e-12)

    def test_backward_matches_composed_graph(self, rng):
        qkv_data = rng.normal(size=(2, 4, 18))
        upstream = rng.normal(size=(2, 4, 6))
        qkv = Tensor(qkv_data.copy(), requires_grad=True)
        (fused_attention_core(qkv, 3, 0.7) * Tensor(upstream)).sum().backward()
        ref_qkv, ref_out = self._composed_reference(qkv_data, 3, 0.7)
        (ref_out * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(qkv.grad, ref_qkv.grad, rtol=1e-9,
                                   atol=1e-12)

    def test_mha_training_forward_unchanged(self, rng):
        """The fused training path must produce the same logits as the
        graph-free inference path (bit-identical, per the PR 3 gate)."""
        mha = MultiHeadAttention(8, 2)
        x = rng.normal(size=(2, 5, 8))
        train_out = mha(Tensor(x, requires_grad=True)).data
        mha.eval()
        with no_grad():
            eval_out = mha(Tensor(x)).data
        assert np.array_equal(train_out, eval_out)

    def test_float32_attention_backward_dtype(self, rng):
        mha = MultiHeadAttention(8, 2)
        mha.to(np.float32)
        x = Tensor(rng.normal(size=(2, 4, 8)).astype(np.float32),
                   requires_grad=True)
        mha(x).sum().backward()
        assert x.grad.dtype == np.float32
        assert mha.qkv.weight.grad.dtype == np.float32
        assert mha.proj.weight.grad.dtype == np.float32

    def test_dropout_path_still_differentiable(self, rng):
        """Attention dropout falls back to the composed graph and still
        reaches every parameter."""
        mha = MultiHeadAttention(8, 2, dropout_p=0.2)
        mha.train()
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        mha(x).sum().backward()
        assert x.grad is not None
        assert mha.qkv.weight.grad is not None


# ----------------------------------------------------------------------
# In-place residual add
# ----------------------------------------------------------------------
class TestResidualAdd:
    def test_forward_and_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        w = Parameter(rng.normal(size=(3, 3)))
        fx = x @ w
        expected = x.data + fx.data
        out = residual_add(x, fx)
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)
        out.sum().backward()
        # d(x + x@W)/dx = 1 + W^T summed over rows.
        expected_grad = np.ones((2, 3)) + np.ones((2, 3)) @ w.data.T
        np.testing.assert_allclose(x.grad, expected_grad, rtol=1e-12)

    def test_no_grad_is_graph_free(self, rng):
        with no_grad():
            x = Tensor(rng.normal(size=(2, 3)))
            out = residual_add(x, Tensor(rng.normal(size=(2, 3))))
        assert out._parents == ()

    def test_output_reading_sublayer_falls_back_to_composed_add(self, rng):
        """tanh's backward reads its own output buffer; residual_add must
        not mutate it — the marked tensor routes to the allocating add
        and the gradient stays correct."""
        data = rng.normal(size=(2, 3))
        x = Tensor(data.copy(), requires_grad=True)
        fx = x.tanh()
        assert fx._backward_reads_output
        out = residual_add(x, fx)
        assert out.data is not fx.data  # fx's buffer was left untouched
        np.testing.assert_array_equal(fx.data, np.tanh(data))
        out.sum().backward()
        expected = 1.0 + (1.0 - np.tanh(data) ** 2)
        np.testing.assert_allclose(x.grad, expected, rtol=1e-12)


# ----------------------------------------------------------------------
# Column buffer pool (Conv2d / Conv3d im2col reuse)
# ----------------------------------------------------------------------
class TestColumnBufferPool:
    def test_acquire_release_recycles(self):
        pool = ColumnBufferPool()
        first = pool.acquire((2, 3, 4), np.float32)
        pool.release(first)
        second = pool.acquire((2, 3, 4), np.float32)
        assert second.__array_interface__["data"][0] == \
            first.__array_interface__["data"][0]

    def test_mismatched_shape_or_dtype_allocates(self):
        pool = ColumnBufferPool()
        buffer = pool.acquire((2, 3, 4), np.float32)
        pool.release(buffer)
        other = pool.acquire((2, 3, 4), np.float64)
        assert other.__array_interface__["data"][0] != \
            buffer.__array_interface__["data"][0]

    def test_double_release_is_deduplicated(self):
        pool = ColumnBufferPool()
        buffer = pool.acquire((4, 4), np.float64)
        pool.release(buffer)
        pool.release(buffer)
        a = pool.acquire((4, 4), np.float64)
        b = pool.acquire((4, 4), np.float64)
        assert a.__array_interface__["data"][0] != \
            b.__array_interface__["data"][0]

    @pytest.mark.parametrize("module_factory,shape", [
        (lambda: Conv2d(2, 3, 3, padding=1), (2, 2, 8, 8)),
        (lambda: Conv3d(2, 3, 3, padding=1), (2, 2, 4, 8, 8)),
    ])
    def test_training_steps_reuse_buffer_and_stay_correct(self, module_factory,
                                                          shape, rng):
        """Two consecutive forward/backward cycles recycle the column
        buffer, and the second step's gradients match a fresh module."""
        data = rng.normal(size=shape)
        module = module_factory()
        module(Tensor(data, requires_grad=True)).sum().backward()
        assert len(module._col_pool._free) == 1
        module.zero_grad()
        x = Tensor(data, requires_grad=True)
        module(x).sum().backward()

        reference = module_factory()
        x_ref = Tensor(data, requires_grad=True)
        reference(x_ref).sum().backward()
        np.testing.assert_allclose(module.weight.grad, reference.weight.grad,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(x.grad, x_ref.grad, rtol=1e-9, atol=1e-12)

    def test_gradient_accumulation_over_two_forwards(self, rng):
        """Two forwards before one backward must not share a buffer —
        the checkout protocol keeps each step's columns alive."""
        conv = Conv2d(1, 2, 3, padding=1)
        a = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        (conv(a).sum() + conv(b).sum()).backward()

        reference = Conv2d(1, 2, 3, padding=1)
        a_ref = Tensor(a.data, requires_grad=True)
        b_ref = Tensor(b.data, requires_grad=True)
        reference(a_ref).sum().backward()
        grad_first = reference.weight.grad.copy()
        reference.zero_grad()
        reference(b_ref).sum().backward()
        np.testing.assert_allclose(conv.weight.grad,
                                   grad_first + reference.weight.grad,
                                   rtol=1e-9, atol=1e-12)

    def test_conv3d_single_gemm_backward_matches_numeric(self, rng):
        conv = Conv3d(2, 3, (2, 3, 3), stride=(1, 2, 1), padding=(1, 1, 0))
        data = rng.normal(size=(1, 2, 3, 6, 6))
        x = Tensor(data.copy(), requires_grad=True)
        conv(x).sum().backward()

        def reference():
            with no_grad():
                return float(conv(Tensor(data)).data.sum())

        numeric = _numeric_grad(reference, data, eps=1e-5)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-7)


# ----------------------------------------------------------------------
# In-place optimisers / clip_grad_norm
# ----------------------------------------------------------------------
class TestInPlaceOptim:
    def _reference_adamw_step(self, data, grad, m, v, step, lr=1e-3,
                              betas=(0.9, 0.999), eps=1e-8, wd=0.01):
        """The historical (allocating) AdamW update."""
        beta1, beta2 = betas
        m = beta1 * m + (1 - beta1) * grad
        v = beta2 * v + (1 - beta2) * grad * grad
        m_hat = m / (1 - beta1 ** step)
        v_hat = v / (1 - beta2 ** step)
        update = m_hat / (np.sqrt(v_hat) + eps) + wd * data
        return data - lr * update, m, v

    def test_adamw_matches_reference_formula(self, rng):
        data = rng.normal(size=(4, 3))
        param = Parameter(data.copy())
        opt = AdamW([param], lr=1e-3, weight_decay=0.01)
        expected = data.copy()
        m = np.zeros_like(data)
        v = np.zeros_like(data)
        for step in range(1, 4):
            grad = rng.normal(size=data.shape)
            param.grad = grad.copy()
            opt.step()
            expected, m, v = self._reference_adamw_step(expected, grad, m, v,
                                                        step)
            np.testing.assert_allclose(param.data, expected, rtol=1e-12,
                                       atol=1e-14)

    def test_adamw_state_and_params_stay_float32(self, rng):
        param = Parameter(rng.normal(size=(5,)).astype(np.float32))
        opt = AdamW([param], lr=1e-3)
        sched = CosineWithWarmup(opt, warmup_epochs=1, total_epochs=4)
        for _ in range(3):
            param.grad = rng.normal(size=(5,)).astype(np.float32)
            opt.step()
            sched.step()  # np.cos lr must not poison the dtype
        assert param.data.dtype == np.float32
        assert opt._m[0].dtype == np.float32
        assert opt._v[0].dtype == np.float32

    def test_sgd_momentum_weight_decay_matches_reference(self, rng):
        data = rng.normal(size=(6,))
        param = Parameter(data.copy())
        opt = SGD([param], lr=0.1, momentum=0.9, weight_decay=0.01)
        expected = data.copy()
        velocity = np.zeros_like(data)
        for _ in range(3):
            grad = rng.normal(size=data.shape)
            param.grad = grad.copy()
            opt.step()
            total = grad + 0.01 * expected
            velocity = 0.9 * velocity + total
            expected = expected - 0.1 * velocity
            np.testing.assert_allclose(param.data, expected, rtol=1e-12)

    def test_sgd_does_not_mutate_live_gradient(self, rng):
        param = Parameter(rng.normal(size=(4,)))
        grad = rng.normal(size=(4,))
        param.grad = grad.copy()
        SGD([param], lr=0.5).step()
        np.testing.assert_array_equal(param.grad, grad)

    def test_clip_grad_norm_keeps_dtype_and_norm(self, rng):
        params = [Parameter(np.zeros(3, dtype=np.float32)),
                  Parameter(np.zeros((2, 2), dtype=np.float32))]
        params[0].grad = np.array([3.0, 0.0, 0.0], dtype=np.float32)
        params[1].grad = np.full((2, 2), 2.0, dtype=np.float32)
        total = clip_grad_norm(params, max_norm=1.0)
        assert np.isclose(total, 5.0)
        assert all(p.grad.dtype == np.float32 for p in params)
        clipped = np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params))
        assert np.isclose(clipped, 1.0)


# ----------------------------------------------------------------------
# float32 vs float64 training equivalence (end to end)
# ----------------------------------------------------------------------
class TestTrainingEquivalence:
    def _train(self, dtype, steps=6, seed=0):
        rng = np.random.default_rng(seed)
        model = build_model("snappix_tiny", num_classes=4, image_size=16,
                            seed=seed).to(dtype)
        x = rng.random((8, 16, 16)).astype(dtype)
        labels = rng.integers(0, 4, size=8)
        eval_x = rng.random((8, 16, 16)).astype(dtype)
        optimizer = AdamW(model.parameters(), lr=2e-3)
        losses = []
        for _ in range(steps):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(x), labels)
            loss.backward()
            clip_grad_norm(model.parameters(), 1.0)
            optimizer.step()
            losses.append(float(loss.data))
        model.eval()
        with no_grad():
            predictions = model(eval_x).data.argmax(axis=-1)
        return np.asarray(losses), predictions

    def test_loss_curves_within_tolerance(self):
        losses64, pred64 = self._train(np.float64)
        losses32, pred32 = self._train(np.float32)
        scale = np.max(np.abs(losses64))
        assert np.max(np.abs(losses64 - losses32)) / scale < 1e-3
        assert np.array_equal(pred64, pred32)

    def test_loss_decreases_in_float32(self):
        losses32, _ = self._train(np.float32, steps=8)
        assert losses32[-1] < losses32[0]

    def test_all_gradients_stay_float32_in_full_model(self, rng):
        model = build_model("snappix_s", num_classes=5, image_size=16,
                            seed=0).to(np.float32)
        x = rng.random((4, 16, 16)).astype(np.float32)
        loss = F.cross_entropy(model(x), np.array([0, 1, 2, 3]))
        assert loss.dtype == np.float32
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name
            assert param.grad.dtype == np.float32, name


# ----------------------------------------------------------------------
# compute_dtype knobs on the training consumers
# ----------------------------------------------------------------------
class TestComputeDtypeKnobs:
    def test_action_recognition_trainer_float32(self):
        from repro.ce import CodedExposureSensor, make_pattern
        dataset = build_dataset("ssv2", num_frames=8, frame_size=16,
                                train_clips_per_class=2,
                                test_clips_per_class=1, seed=0)
        ce_config = CEConfig(num_slots=8, tile_size=8, frame_height=16,
                             frame_width=16)
        sensor = CodedExposureSensor(
            ce_config, make_pattern("random", 8, 8,
                                    rng=np.random.default_rng(0)))
        model = build_snappix_model("tiny", task="ar",
                                    num_classes=dataset.num_classes,
                                    image_size=16, seed=0)
        trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor,
                                           epochs=1, batch_size=4,
                                           compute_dtype=np.float32, seed=0)
        loss = trainer.train_epoch()
        assert np.isfinite(loss)
        assert model.dtype == np.float32
        accuracy = trainer.evaluate("test")
        assert 0.0 <= accuracy <= 1.0

    def test_pretrainer_float32(self, small_video):
        config = build_snappix_model("tiny", task="ar", image_size=16,
                                     seed=0).config
        from repro.ce import CodedExposureSensor, make_pattern
        ce_config = CEConfig(num_slots=8, tile_size=8, frame_height=16,
                             frame_width=16)
        sensor = CodedExposureSensor(
            ce_config, make_pattern("random", 8, 8,
                                    rng=np.random.default_rng(0)))
        pretrainer = MaskedPretrainer(config, sensor, num_frames=8, epochs=1,
                                      batch_size=2,
                                      compute_dtype=np.float32, seed=0)
        loss = pretrainer.pretrain_step(small_video)
        assert np.isfinite(loss)
        assert pretrainer.model.dtype == np.float32
        for name, param in pretrainer.model.named_parameters():
            if param.grad is not None:
                assert param.grad.dtype == np.float32, name

    def test_decorrelation_learner_float32(self, small_video):
        config = CEConfig(num_slots=8, tile_size=4, frame_height=16,
                          frame_width=16)
        learner = DecorrelationPatternLearner(config,
                                              compute_dtype=np.float32,
                                              seed=0)
        loss = learner.training_step(small_video)
        assert np.isfinite(loss)
        assert learner.logits.dtype == np.float32
        assert learner.logits.grad.dtype == np.float32
        pattern = learner.current_pattern()
        assert set(np.unique(pattern)) <= {0.0, 1.0}

    def test_pipeline_config_validates_dtype(self):
        from repro.core import PipelineConfig
        config = PipelineConfig(compute_dtype="float32")
        assert config.compute_dtype == "float32"
        with pytest.raises(ValueError):
            PipelineConfig(compute_dtype="float16")
