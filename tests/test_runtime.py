"""Tests for the staged execution runtime (``repro.runtime``)."""

import numpy as np
import pytest

from repro.analysis import sweep_exposure_density, sweep_exposure_slots
from repro.ce import CEConfig, CodedExposureSensor, coded_exposure, make_pattern
from repro.core import PipelineConfig, SnapPixSystem
from repro.runtime import (
    ArtifactStore,
    BatchEncoder,
    FunctionStage,
    PatternStage,
    PipelineRunner,
    PretrainPoolStage,
    build_pipeline_stages,
    fingerprint,
)


def tiny_config(**overrides):
    defaults = dict(frame_size=16, num_slots=8, tile_size=8, model_variant="tiny",
                    pattern_epochs=1, pretrain_epochs=1, finetune_epochs=2,
                    pretrain_clips=12, train_clips_per_class=3,
                    test_clips_per_class=2, batch_size=6)
    defaults.update(overrides)
    return PipelineConfig(**defaults)


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_deterministic(self):
        payload = {"a": 1, "b": [1.5, "x"], "c": np.arange(6).reshape(2, 3)}
        assert fingerprint(payload) == fingerprint(payload)

    def test_type_tagged(self):
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(True) != fingerprint(1)

    def test_array_content_sensitive(self):
        a = np.zeros((2, 3))
        b = np.zeros((3, 2))
        assert fingerprint(a) != fingerprint(b)
        c = a.copy()
        c[0, 0] = 1.0
        assert fingerprint(a) != fingerprint(c)

    def test_dict_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_separator_bytes_cannot_collide(self):
        # Strings are length-framed: an embedded separator + type tag must
        # not reproduce another structure's encoding.
        assert fingerprint(["a,str:b"]) != fingerprint(["a", "b"])
        assert fingerprint({"k": "v,->w"}) != fingerprint({"k": "v", "x": "w"})

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            fingerprint(object())


# ----------------------------------------------------------------------
# ArtifactStore
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_memory_hit_and_miss(self):
        store = ArtifactStore()
        assert store.get("missing") is None
        assert store.stats.misses == 1
        store.put("k", {"x": 1})
        assert store.get("k") == {"x": 1}
        assert store.stats.hits == 1
        assert "k" in store

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path / "cache")
        first.put("stage-abc", np.arange(4))
        second = ArtifactStore(tmp_path / "cache")
        assert second.contains("stage-abc")
        np.testing.assert_array_equal(second.get("stage-abc"), np.arange(4))
        assert second.stats.disk_loads == 1

    def test_evict_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        store.put("a", 1)
        store.put("b", 2)
        assert store.evict("a")
        assert not store.evict("a")
        assert store.keys() == ["b"]
        store.clear()
        assert len(store) == 0
        assert not ArtifactStore(tmp_path / "cache").contains("b")


# ----------------------------------------------------------------------
# Stage hashing
# ----------------------------------------------------------------------
class TestStageHash:
    def test_same_config_same_key(self):
        a = PretrainPoolStage(num_clips=8, num_frames=8, frame_size=16, seed=0)
        b = PretrainPoolStage(num_clips=8, num_frames=8, frame_size=16, seed=0)
        assert a.cache_key() == b.cache_key()

    def test_config_change_invalidates_key(self):
        base = PatternStage("decorrelated", num_slots=8, tile_size=8,
                            frame_size=16, epochs=2, seed=0)
        for change in (dict(epochs=3), dict(seed=1), dict(lr=0.2),
                       dict(pattern="random")):
            kwargs = dict(pattern="decorrelated", num_slots=8, tile_size=8,
                          frame_size=16, epochs=2, seed=0)
            kwargs.update(change)
            changed = PatternStage(**kwargs)
            assert changed.cache_key() != base.cache_key(), change

    def test_upstream_key_chains_into_hash(self):
        stage = PatternStage("random", num_slots=8, tile_size=8, frame_size=16)
        assert (stage.cache_key({"pretrain_pool": "pool-1"})
                != stage.cache_key({"pretrain_pool": "pool-2"}))

    def test_version_bump_invalidates_key(self):
        a = FunctionStage("s", lambda: 1, version=1)
        b = FunctionStage("s", lambda: 1, version=2)
        assert a.cache_key() != b.cache_key()


# ----------------------------------------------------------------------
# PipelineRunner
# ----------------------------------------------------------------------
class TestPipelineRunner:
    def make_counting_stage(self, name, fn, inputs=(), config=None, **kwargs):
        calls = []

        def counted(**inp):
            calls.append(1)
            return fn(**inp)

        return FunctionStage(name, counted, inputs=inputs, config=config,
                             **kwargs), calls

    def test_executes_in_dependency_order(self):
        base, _ = self.make_counting_stage("base", lambda: 2)
        double, _ = self.make_counting_stage("double", lambda base: base * 2,
                                             inputs=("base",))
        result = PipelineRunner().run([double, base])
        assert result.artifacts == {"base": 2, "double": 4}
        assert [ex.stage for ex in result.executions] == ["base", "double"]

    def test_unknown_dependency_raises(self):
        stage = FunctionStage("s", lambda ghost: ghost, inputs=("ghost",))
        with pytest.raises(ValueError, match="unknown artifact"):
            PipelineRunner().run([stage])

    def test_cycle_raises(self):
        a = FunctionStage("a", lambda b: b, inputs=("b",))
        b = FunctionStage("b", lambda a: a, inputs=("a",))
        with pytest.raises(ValueError, match="cycle"):
            PipelineRunner().run([a, b])

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            PipelineRunner().run([FunctionStage("s", lambda: 1),
                                  FunctionStage("s", lambda: 2)])

    def test_second_run_is_pure_cache_hits(self):
        stage, calls = self.make_counting_stage("s", lambda: 42)
        runner = PipelineRunner()
        first = runner.run([stage])
        second = runner.run([stage])
        assert len(calls) == 1
        assert first.cache_misses == ["s"]
        assert second.cache_hits == ["s"]
        assert second.artifacts["s"] == 42

    def test_non_cacheable_stage_always_runs(self):
        stage, calls = self.make_counting_stage("s", lambda: 7, cacheable=False)
        runner = PipelineRunner()
        runner.run([stage])
        runner.run([stage])
        assert len(calls) == 2

    def test_override_value_feeds_downstream_hash(self):
        double = FunctionStage("double", lambda base: base * 2,
                               inputs=("base",))
        runner = PipelineRunner()
        first = runner.run([double], overrides={"base": 3})
        second = runner.run([double], overrides={"base": 5})
        assert first.artifacts["double"] == 6
        assert second.artifacts["double"] == 10
        assert second.cache_misses == ["double"]


# ----------------------------------------------------------------------
# Full-pipeline caching (acceptance criterion)
# ----------------------------------------------------------------------
class TestPipelineCaching:
    def test_repeat_run_skips_pattern_and_pretrain(self):
        config = tiny_config(use_pretraining=True)
        runner = PipelineRunner(ArtifactStore())
        cold = runner.run(build_pipeline_stages(config, task="ar"))
        warm = runner.run(build_pipeline_stages(config, task="ar"))
        assert set(cold.cache_misses) == {"pretrain_pool", "pattern",
                                          "pretrain", "finetune", "report"}
        # Unchanged config: pattern learning and pre-training resolve from
        # the cache instead of recomputing.
        assert "pattern" in warm.cache_hits
        assert "pretrain" in warm.cache_hits
        assert warm.cache_misses == []
        assert warm.artifacts["finetune"] == cold.artifacts["finetune"]

    def test_config_change_invalidates_only_downstream(self):
        runner = PipelineRunner(ArtifactStore())
        runner.run(build_pipeline_stages(tiny_config(), task="ar"))
        changed = runner.run(build_pipeline_stages(
            tiny_config(pattern_epochs=2), task="ar"))
        # The pool does not depend on pattern epochs: still a hit.  The
        # pattern and everything downstream of it must recompute.
        assert "pretrain_pool" in changed.cache_hits
        assert "report" in changed.cache_hits
        assert "pattern" in changed.cache_misses
        assert "pretrain" in changed.cache_misses
        assert "finetune" in changed.cache_misses

    def test_disk_store_shared_across_runners(self, tmp_path):
        config = tiny_config(use_pretraining=False)
        stages = lambda: build_pipeline_stages(config, task="ar")
        cold = PipelineRunner(ArtifactStore(tmp_path / "c")).run(stages())
        warm = PipelineRunner(ArtifactStore(tmp_path / "c")).run(stages())
        assert warm.cache_misses == []
        assert warm.artifacts["finetune"] == cold.artifacts["finetune"]


# ----------------------------------------------------------------------
# SnapPixSystem facade over the runtime
# ----------------------------------------------------------------------
class TestSystemFacade:
    def test_shared_store_reuses_stages_across_systems(self):
        store = ArtifactStore()
        config = tiny_config(use_pretraining=True)
        first = SnapPixSystem(config, store=store)
        first.prepare_pattern()
        first.pretrain()
        second = SnapPixSystem(config, store=store)
        correlation = second.prepare_pattern()
        assert "pattern" in second.last_run.cache_hits
        loss = second.pretrain()
        assert "pretrain" in second.last_run.cache_hits
        assert np.isfinite(correlation) and np.isfinite(loss)
        np.testing.assert_array_equal(first.pattern, second.pattern)

    def test_stepwise_calls_reuse_runner_cache(self):
        system = SnapPixSystem(tiny_config(use_pretraining=True))
        system.prepare_pattern()
        system.pretrain()
        # pretrain() re-declares the pattern stage; it must hit the cache.
        assert "pattern" in system.last_run.cache_hits
        assert "pretrain" in system.last_run.cache_misses


# ----------------------------------------------------------------------
# Sweep equivalence: runtime path vs legacy path (acceptance criterion)
# ----------------------------------------------------------------------
class TestSweepRuntimePath:
    def test_slots_sweep_rows_identical(self):
        kwargs = dict(num_slots_values=(4, 8), frame_size=16, tile_size=8,
                      measure_correlation=True, num_clips=8, seed=0)
        legacy = sweep_exposure_slots(**kwargs)
        store = ArtifactStore()
        runtime = sweep_exposure_slots(store=store, **kwargs)
        assert runtime == legacy
        # Repeating the sweep against the same store recomputes nothing.
        misses_before = store.stats.misses
        puts_before = store.stats.puts
        again = sweep_exposure_slots(store=store, **kwargs)
        assert again == legacy
        assert store.stats.puts == puts_before
        assert store.stats.misses == misses_before

    def test_density_sweep_rows_identical(self):
        kwargs = dict(densities=(0.25, 0.75), num_slots=8, tile_size=4,
                      frame_size=16, num_clips=8, seed=0)
        legacy = sweep_exposure_density(**kwargs)
        runtime = sweep_exposure_density(store=ArtifactStore(), **kwargs)
        assert runtime == legacy


# ----------------------------------------------------------------------
# BatchEncoder
# ----------------------------------------------------------------------
class TestBatchEncoder:
    def make_sensor(self, num_slots=8, tile_size=4, frame_size=16, seed=0):
        config = CEConfig(num_slots=num_slots, tile_size=tile_size,
                          frame_height=frame_size, frame_width=frame_size)
        pattern = make_pattern("random", num_slots, tile_size,
                               rng=np.random.default_rng(seed))
        return CodedExposureSensor(config, pattern)

    def test_batch_matches_single_clip_coded_exposure(self, rng):
        sensor = self.make_sensor()
        clips = rng.random((5, 8, 16, 16))
        encoder = BatchEncoder(sensor, batch_size=2)
        batched = encoder.encode(clips)
        singles = np.stack([
            coded_exposure(clip, sensor.full_mask,
                           normalize=sensor.config.normalize_by_exposures)
            for clip in clips])
        np.testing.assert_allclose(batched, singles)

    def test_single_clip_shape(self, rng):
        sensor = self.make_sensor()
        clip = rng.random((8, 16, 16))
        coded = BatchEncoder(sensor).encode(clip)
        assert coded.shape == (16, 16)
        np.testing.assert_allclose(coded, sensor.capture(clip))

    def test_chunking_invariance(self, rng):
        sensor = self.make_sensor()
        clips = rng.random((7, 8, 16, 16))
        small = BatchEncoder(sensor, batch_size=2).encode(clips)
        large = BatchEncoder(sensor, batch_size=64).encode(clips)
        np.testing.assert_allclose(small, large)

    def test_stream_matches_batch_and_counts(self, rng):
        sensor = self.make_sensor()
        clips = rng.random((5, 8, 16, 16))
        encoder = BatchEncoder(sensor, batch_size=2)
        streamed = np.stack(list(encoder.encode_stream(iter(clips))))
        np.testing.assert_allclose(streamed, sensor.capture(clips))
        assert encoder.stats == {"clips_encoded": 5, "batches_encoded": 3}

    def test_unnormalized_mode(self, rng):
        sensor = self.make_sensor()
        clips = rng.random((3, 8, 16, 16))
        raw = BatchEncoder(sensor, normalize=False).encode(clips)
        np.testing.assert_allclose(raw, sensor.capture_raw(clips))

    def test_invalid_inputs(self, rng):
        sensor = self.make_sensor()
        with pytest.raises(ValueError):
            BatchEncoder(sensor, batch_size=0)
        with pytest.raises(ValueError):
            BatchEncoder(sensor).encode(rng.random((16, 16)))
        with pytest.raises(ValueError):
            list(BatchEncoder(sensor).encode_stream([rng.random((16, 16))]))
