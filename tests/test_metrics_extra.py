"""Tests for the extended evaluation metrics (top-k, per-class, SSIM, MAE)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import (
    mean_absolute_error,
    mean_per_class_accuracy,
    per_class_accuracy,
    ssim,
    topk_accuracy,
)


class TestTopKAccuracy:
    def test_top1_matches_argmax(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.3, 0.7]])
        labels = np.array([1, 0, 0])
        assert topk_accuracy(logits, labels, k=1) == pytest.approx(2 / 3)

    def test_topk_equals_one_when_k_is_num_classes(self, rng):
        logits = rng.normal(size=(10, 4))
        labels = rng.integers(0, 4, size=10)
        assert topk_accuracy(logits, labels, k=4) == 1.0

    def test_topk_monotone_in_k(self, rng):
        logits = rng.normal(size=(50, 6))
        labels = rng.integers(0, 6, size=50)
        accuracies = [topk_accuracy(logits, labels, k=k) for k in range(1, 7)]
        assert all(a <= b + 1e-12 for a, b in zip(accuracies, accuracies[1:]))

    def test_validation(self, rng):
        logits = rng.normal(size=(5, 3))
        labels = np.zeros(5, dtype=int)
        with pytest.raises(ValueError):
            topk_accuracy(logits, labels, k=0)
        with pytest.raises(ValueError):
            topk_accuracy(logits, labels, k=4)
        with pytest.raises(ValueError):
            topk_accuracy(logits, np.zeros(4, dtype=int), k=1)


class TestPerClassAccuracy:
    def test_perfect_predictions(self):
        labels = np.array([0, 0, 1, 2])
        accuracies = per_class_accuracy(labels, labels, num_classes=3)
        assert np.allclose(accuracies, 1.0)
        assert mean_per_class_accuracy(labels, labels, num_classes=3) == 1.0

    def test_missing_class_is_nan_and_excluded_from_mean(self):
        predictions = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 0])
        accuracies = per_class_accuracy(predictions, labels, num_classes=3)
        assert np.isnan(accuracies[2])
        mean = mean_per_class_accuracy(predictions, labels, num_classes=3)
        assert mean == pytest.approx(np.nanmean(accuracies[:2]))

    def test_all_classes_missing(self):
        value = mean_per_class_accuracy(np.array([], dtype=int),
                                        np.array([], dtype=int), num_classes=2)
        assert np.isnan(value)

    def test_imbalanced_classes_weighted_equally(self):
        # Class 0 has 9 clips all correct, class 1 has 1 clip wrong:
        # overall accuracy is 0.9 but mean per-class accuracy is 0.5.
        labels = np.array([0] * 9 + [1])
        predictions = np.array([0] * 9 + [0])
        assert mean_per_class_accuracy(predictions, labels, 2) == pytest.approx(0.5)


class TestMAE:
    def test_zero_for_identical(self, rng):
        frame = rng.random((4, 4))
        assert mean_absolute_error(frame, frame) == 0.0

    def test_known_value(self):
        assert mean_absolute_error(np.ones((2, 2)), np.zeros((2, 2))) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros((2, 2)), np.zeros((3, 3)))


class TestSSIM:
    def test_identical_images_score_one(self, rng):
        image = rng.random((16, 16))
        assert ssim(image, image) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self, rng):
        grid = np.linspace(0, 1, 16)
        image = np.outer(grid, grid)
        noisy = np.clip(image + rng.normal(0, 0.2, size=image.shape), 0, 1)
        very_noisy = np.clip(image + rng.normal(0, 0.6, size=image.shape), 0, 1)
        assert ssim(noisy, image) > ssim(very_noisy, image)

    def test_bounded_above_by_one(self, rng):
        a = rng.random((12, 12))
        b = rng.random((12, 12))
        assert ssim(a, b) <= 1.0 + 1e-9

    def test_batched_input_averages(self, rng):
        stack = rng.random((3, 12, 12))
        assert ssim(stack, stack) == pytest.approx(1.0)

    def test_constant_images(self):
        a = np.full((10, 10), 0.5)
        assert ssim(a, a) == pytest.approx(1.0)

    def test_validation(self, rng):
        image = rng.random((8, 8))
        with pytest.raises(ValueError):
            ssim(image, rng.random((9, 9)))
        with pytest.raises(ValueError):
            ssim(image, image, window=9)
        with pytest.raises(ValueError):
            ssim(np.zeros(5), np.zeros(5))

    @given(st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=15, deadline=None)
    def test_ssim_symmetry(self, noise):
        rng = np.random.default_rng(42)
        grid = np.linspace(0, 1, 10)
        image = np.outer(grid, grid)
        other = np.clip(image + rng.normal(0, noise + 1e-6, size=image.shape), 0, 1)
        assert ssim(image, other) == pytest.approx(ssim(other, image), abs=1e-9)
