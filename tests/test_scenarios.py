"""Tests for the scenario fleet (repro.scenarios).

The engine tests share one trained reference anchor (module-scoped,
cached to disk) and re-run only the cheap perturbed-capture rows, so
the suite stays fast while still exercising the real stage pipeline.
"""

import json
import shutil

import numpy as np
import pytest

from repro.runtime import ArtifactStore
from repro.scenarios import (
    CATEGORIES,
    CLASSIFICATIONS,
    DEFAULT_THRESHOLDS,
    SCENARIOS,
    ScenarioReferenceStage,
    build_report,
    classify_row,
    format_scenario_table,
    get_scenario,
    make_row_stage,
    row_seed,
    run_scenario_grid,
    run_scenario_matrix,
    suite,
)
from repro.scenarios.registry import Scenario


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_scenario_is_well_formed(self):
        for scenario in SCENARIOS:
            assert scenario.category in CATEGORIES
            assert set(scenario.quick_severities) <= set(scenario.severities)
            assert scenario.description

    def test_every_category_is_covered(self):
        covered = {scenario.category for scenario in SCENARIOS}
        assert covered == set(CATEGORIES)

    def test_quick_suite_has_at_least_20_rows(self):
        assert len(suite("quick")) >= 20

    def test_full_suite_extends_quick(self):
        assert len(suite("full")) > len(suite("quick"))

    def test_suite_category_filter(self):
        rows = suite("quick", categories=["serving"])
        assert rows
        assert all(s.category == "serving" for s, _ in rows)
        with pytest.raises(ValueError):
            suite("quick", categories=["nonsense"])
        with pytest.raises(ValueError):
            suite("weekly")

    def test_get_scenario(self):
        assert get_scenario("dead_pixels").param == "dead_pixel_fraction"
        with pytest.raises(KeyError):
            get_scenario("phantom")

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario("x", "bogus", "defect", "dead_pixel_fraction",
                     (0.1,), (0.1,), "d")
        with pytest.raises(ValueError):
            Scenario("x", "noise", "bogus", "p", (0.1,), (0.1,), "d")
        with pytest.raises(ValueError):  # quick not a subset of full
            Scenario("x", "noise", "noise", "adc_bits", (4,), (3,), "d")
        with pytest.raises(ValueError):  # empty grid
            Scenario("x", "noise", "noise", "adc_bits", (), (), "d")

    def test_perturbation_hooks_build_the_right_object(self):
        defects = get_scenario("dead_pixels").build_defects(0.05, seed=9)
        assert defects.dead_pixel_fraction == 0.05
        assert defects.seed == 9
        noise = get_scenario("adc_bits").build_noise(5, seed=9)
        assert noise.adc_bits == 5  # int-cast, not 5.0
        faults = get_scenario("bursty_arrivals").build_faults(4, seed=9)
        assert faults.burst_size == 4
        assert faults.burst_pause_s > 0
        with pytest.raises(ValueError):
            get_scenario("dead_pixels").build_noise(0.05, seed=0)
        with pytest.raises(ValueError):
            get_scenario("adc_bits").build_faults(5, seed=0)

    def test_row_seed_is_stable_and_distinct(self):
        scenario = get_scenario("dead_pixels")
        seeds = [row_seed(0, scenario, sev) for sev in scenario.severities]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [row_seed(0, scenario, sev)
                         for sev in scenario.severities]
        # Quick and full runs of the same cell share the seed (the
        # severity index comes from the FULL grid), so they share cache.
        assert row_seed(0, scenario, 0.05) == row_seed(0, scenario, 0.05)
        # Different base seed moves every row.
        assert row_seed(1, scenario, 0.05) != row_seed(0, scenario, 0.05)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def _capture_row(retention, accuracy=0.3, category="noise"):
    return {"scenario": "read_noise", "category": category,
            "severity": 10.0, "accuracy": accuracy,
            "retention": retention, "capture_snr_db": 12.0}


class TestClassification:
    def test_threshold_bands(self):
        assert classify_row(_capture_row(1.0)) == "pass"
        assert classify_row(_capture_row(0.75)) == "pass"
        assert classify_row(_capture_row(0.74)) == "degrade"
        assert classify_row(_capture_row(0.40)) == "degrade"
        assert classify_row(_capture_row(0.39)) == "fail"

    def test_custom_thresholds(self):
        strict = {"pass_retention": 0.95, "degrade_retention": 0.80}
        assert classify_row(_capture_row(0.9), strict) == "degrade"

    def test_missing_or_non_finite_retention_fails(self):
        assert classify_row(_capture_row(None)) == "fail"
        assert classify_row(_capture_row(float("nan"))) == "fail"
        assert classify_row(_capture_row(float("inf"))) == "fail"

    def test_serving_rows_classify_by_invariants(self):
        row = {"scenario": "corrupt_payloads", "category": "serving",
               "severity": 0.5, "retention": None, "accuracy": None,
               "invariants_ok": True}
        assert classify_row(row) == "pass"
        row["invariants_ok"] = False
        assert classify_row(row) == "fail"


class TestBuildReport:
    REFERENCE = {"clean_accuracy": 0.4,
                 "config": {"model": "snappix_s", "dataset": "ucf101"}}

    def test_payload_schema_and_counts(self):
        rows = [_capture_row(1.0), _capture_row(0.5),
                {"scenario": "corrupt_payloads", "category": "serving",
                 "severity": 0.5, "retention": None, "accuracy": None,
                 "invariants_ok": True}]
        payload = build_report(self.REFERENCE, rows, suite="quick",
                               seed=0, backend="numpy")
        assert payload["suite"] == "quick"
        assert payload["thresholds"] == DEFAULT_THRESHOLDS
        assert payload["reference"]["clean_accuracy"] == 0.4
        assert payload["summary"]["num_rows"] == 3
        assert payload["summary"]["counts"] == {"pass": 2, "degrade": 1,
                                                "fail": 0}
        for row in payload["rows"]:
            assert row["classification"] in CLASSIFICATIONS

    def test_worst_case_by_category(self):
        rows = [_capture_row(1.0), _capture_row(0.5),
                _capture_row(0.9, category="exposure")]
        payload = build_report(self.REFERENCE, rows, suite="quick",
                               seed=0, backend="numpy")
        worst = payload["summary"]["worst_case_by_category"]
        assert worst["noise"]["retention"] == 0.5
        assert worst["exposure"]["retention"] == 0.9
        assert "_rank" not in worst["noise"]

    def test_payload_is_json_clean(self):
        payload = build_report(self.REFERENCE, [_capture_row(0.8)],
                               suite="quick", seed=0, backend="numpy")
        encoded = json.dumps(payload, allow_nan=False)
        assert json.loads(encoded) == payload

    def test_format_table_renders_every_row(self):
        payload = build_report(self.REFERENCE, [_capture_row(0.8)],
                               suite="quick", seed=0, backend="numpy")
        table = format_scenario_table(payload)
        assert "read_noise" in table
        assert "pass=1" in table


# ----------------------------------------------------------------------
# Engine (shares one trained reference anchor on disk)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def reference_cache(tmp_path_factory):
    """Train the clean anchor once; later stores copy the cached artifact."""
    cache = tmp_path_factory.mktemp("scenario-cache") / "reference"
    store = ArtifactStore(cache)
    from repro.runtime import PipelineRunner
    PipelineRunner(store).run([ScenarioReferenceStage(seed=0)])
    return cache


def _store_with_reference(reference_cache, tmp_path, name):
    """A fresh store pre-seeded with ONLY the reference artifact, so row
    stages run for real while the 2.7s training is a cache hit."""
    cache = tmp_path / name
    shutil.copytree(reference_cache, cache)
    return ArtifactStore(cache)


class TestEngine:
    def test_stage_signatures_separate_rows(self):
        stage_a = make_row_stage(get_scenario("dead_pixels"), 0.01, seed=0)
        stage_b = make_row_stage(get_scenario("dead_pixels"), 0.05, seed=0)
        stage_c = make_row_stage(get_scenario("dead_pixels"), 0.01, seed=1)
        assert stage_a.signature() != stage_b.signature()
        assert stage_a.signature() != stage_c.signature()
        serving = make_row_stage(get_scenario("corrupt_payloads"), 0.5)
        assert serving.name == stage_a.name == "scenario_row"

    def test_grid_rows_are_deterministic_across_workers(
            self, reference_cache, tmp_path):
        kwargs = dict(suite_name="quick", categories=["exposure"], seed=0)
        serial = run_scenario_grid(
            workers=1,
            store=_store_with_reference(reference_cache, tmp_path, "w1"),
            **kwargs)
        parallel = run_scenario_grid(
            workers=3,
            store=_store_with_reference(reference_cache, tmp_path, "w3"),
            **kwargs)
        assert json.dumps(serial["rows"]) == json.dumps(parallel["rows"])
        assert serial["reference"]["clean_accuracy"] == \
            parallel["reference"]["clean_accuracy"]

    def test_capture_rows_carry_the_expected_fields(
            self, reference_cache, tmp_path):
        store = _store_with_reference(reference_cache, tmp_path, "fields")
        outcome = run_scenario_grid(suite_name="quick",
                                    categories=["exposure"],
                                    workers=1, store=store, seed=0)
        rows = outcome["rows"]
        assert len(rows) == len(suite("quick", categories=["exposure"]))
        for row in rows:
            assert row["category"] == "exposure"
            assert 0.0 <= row["accuracy"] <= 1.0
            assert row["retention"] is not None
            snr = row["capture_snr_db"]
            assert snr is None or np.isfinite(snr)

    def test_matrix_report_end_to_end(self, reference_cache, tmp_path):
        store = _store_with_reference(reference_cache, tmp_path, "matrix")
        payload = run_scenario_matrix(suite_name="quick",
                                      categories=["exposure"],
                                      workers=1, store=store, seed=0)
        assert payload["reference"]["model"] == "snappix_s"
        assert payload["summary"]["num_rows"] == len(payload["rows"])
        for row in payload["rows"]:
            assert row["classification"] in CLASSIFICATIONS

    def test_second_run_is_pure_cache_hit(self, reference_cache, tmp_path):
        store = _store_with_reference(reference_cache, tmp_path, "twice")
        first = run_scenario_grid(suite_name="quick", categories=["exposure"],
                                  workers=1, store=store, seed=0)
        stats_after_first = store.stats.misses
        second = run_scenario_grid(suite_name="quick", categories=["exposure"],
                                   workers=1, store=store, seed=0)
        assert store.stats.misses == stats_after_first
        assert json.dumps(first["rows"]) == json.dumps(second["rows"])
