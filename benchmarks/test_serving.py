"""Inference serving — micro-batching throughput gate.

The serving subsystem exists to turn concurrent single-clip requests
into batched, BLAS-friendly forward passes, so the gate is the point:
micro-batched serving must beat the sequential single-clip reference by
at least 1.5x throughput on a Table I model, while predicting *exactly*
the same labels (identical argmax) through the coalesced path.  The
measured latency/throughput rows are persisted as
``benchmarks/results/serving_bench.json`` — the serving baseline CI
tracks per PR, alongside ``perf_engine.json``.
"""

import pytest

from repro.serving import benchmark_serving, write_serving_results

SPEEDUP_THRESHOLD = 1.5
MODELS = ("snappix_s", "snappix_b")


def _run_profile(seed: int = 0):
    # 64 requests divide evenly into every measured batch size, so no
    # trailing partial batch sits out its flush deadline and distorts
    # the throughput of the larger batch limits.
    return benchmark_serving(models=MODELS, batch_sizes=(1, 8, 32),
                             num_requests=64, image_size=32, num_frames=16,
                             max_delay_s=0.05, seed=seed)


def _best_speedups(payload):
    best = {}
    for row in payload["rows"]:
        best[row["model"]] = max(best.get(row["model"], 0.0),
                                 row["speedup_vs_sequential"])
    return best


@pytest.mark.benchmark(group="serving")
def test_micro_batched_serving_beats_sequential(benchmark, record_rows):
    """Batched serving >= 1.5x sequential with identical argmax labels."""
    payload = benchmark.pedantic(_run_profile, rounds=1, iterations=1)
    if max(_best_speedups(payload).values()) < SPEEDUP_THRESHOLD:
        # Timing on shared hosts is noisy; one re-measurement keeps a
        # descheduled round from failing the gate (perf_engine idiom).
        payload = _run_profile(seed=0)
    record_rows("serving_microbatch", "Micro-batched serving vs sequential",
                payload["rows"])
    write_serving_results(payload)

    # Correctness first: the coalesced path must be decision-identical
    # to sequential single-clip no_grad inference in every configuration.
    for row in payload["rows"]:
        assert row["labels_match_sequential"], (
            f"{row['model']} @ max_batch={row['max_batch_size']} diverged "
            f"from the sequential reference")
        assert row["rejected"] == 0  # load generator sizes the queue

    best = _best_speedups(payload)
    assert any(speedup >= SPEEDUP_THRESHOLD for speedup in best.values()), (
        f"expected >= {SPEEDUP_THRESHOLD}x micro-batching speedup on at "
        "least one Table I model, got "
        + ", ".join(f"{name}={speedup:.2f}x" for name, speedup in best.items()))

    # Micro-batching must actually have coalesced requests (the win has
    # to come from batching, not from measurement artefacts).
    batched_rows = [row for row in payload["rows"]
                    if row["max_batch_size"] > 1]
    assert any(row["mean_batch_size"] > 1.5 for row in batched_rows)
