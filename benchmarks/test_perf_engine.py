"""Fast inference engine — perf-regression gate.

The paper's headline system claim is throughput, so the numeric
substrate has to be fast: this benchmark times the canonical hot paths
(ViT / conv / video-transformer forwards, batched CE encoding, sensor
capture) in float64 vs float32 and gates on the float32 fast path
delivering at least a 1.3x inference speedup on Table I models without
changing a single predicted class.  The int8 post-training-quantised
engine is gated on top as a non-regression bar — int8 must never run
meaningfully slower than float32 — within a 1% argmax-mismatch budget.

The int8 bar was >= 1.5x when the engine landed, but most of that
margin was an allocator effect: the float32 engine then materialised
an out-of-place (B, H, T, T) temporary per attention forward while
the int8 engine ran pooled scratch.  The compute-backend layer's
``out=``-aware attention path removed that temporary (~1.7x on ViT
forwards in a fresh process, where each large temp is an mmap
round-trip), so the honest remaining int8 margin is the arithmetic
one (LUT GELU, folded dequant, max-free softmax) — ~1.0-1.15x here,
since the int8 GEMM is realised as float32 sgemm on this substrate.
Results are persisted as ``benchmarks/results/perf_engine.json`` so CI
tracks the trajectory.
"""

import pytest

from repro.core import (remeasure_slow_models, remeasure_slow_quant,
                        run_perf_engine, run_quant_engine)

SPEEDUP_THRESHOLD = 1.3
MIN_FAST_MODELS = 2
# Non-regression floor for int8 vs the pooled float32 engine: the int8
# GEMM is float32 sgemm under the hood, so parity is the expectation
# and the floor only guards against the quant path itself regressing.
QUANT_FLOOR = 0.9
QUANT_MISMATCH_BUDGET = 0.01


@pytest.mark.benchmark(group="perf_engine")
def test_perf_engine(benchmark, record_rows):
    """float32 >= 1.3x float64 (same decisions); int8 never slower."""

    def run():
        payload = run_perf_engine(quick=True, seed=0)
        # Timing on shared hosts is noisy; give slow-looking models one
        # longer re-measurement before gating on the threshold.
        payload = remeasure_slow_models(payload, threshold=SPEEDUP_THRESHOLD)
        quant = run_quant_engine(quick=True, seed=0)
        quant = remeasure_slow_quant(quant, threshold=1.0)
        payload["quant"] = quant["models"]
        return payload

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("perf_engine", "Fast inference engine: float32 vs float64",
                payload)

    models = payload["models"]
    fast = [row for row in models if row["speedup"] >= SPEEDUP_THRESHOLD]
    assert len(fast) >= MIN_FAST_MODELS, (
        f"expected >= {MIN_FAST_MODELS} models at >= {SPEEDUP_THRESHOLD}x, got "
        + ", ".join(f"{row['model']}={row['speedup']:.2f}x" for row in models))

    # Dropping to float32 must never change a classification decision.
    for row in models:
        assert row["decisions_match"], f"{row['model']} argmax changed in float32"
        assert row["max_abs_logit_diff"] < 1e-4

    # Byte-video CE encode: float32 accumulates within float32 tolerance.
    assert payload["ce_encode"]["max_rel_error"] < 1e-5

    # The vectorised sensor must reproduce the per-pixel-object oracle
    # exactly — same readout charges, same CaptureStats — and be faster.
    sensor = payload["sensor"]
    assert sensor["readout_exact"]
    assert sensor["stats_exact"]
    assert sensor["speedup"] > 5.0

    # Int8 PTQ gate: non-regression against the pooled float32 engine
    # (int8 runs the same sgemm plus cheaper activations, so it must
    # never fall meaningfully behind), and every model within the 1%
    # argmax-mismatch accuracy budget.
    quant = payload["quant"]
    quant_slow = [row for row in quant if row["speedup"] < QUANT_FLOOR]
    assert not quant_slow, (
        f"int8 regressed below {QUANT_FLOOR}x of float32: "
        + ", ".join(f"{row['model']}={row['speedup']:.2f}x"
                    for row in quant_slow))
    for row in quant:
        assert row["argmax_mismatch_rate"] <= QUANT_MISMATCH_BUDGET, (
            f"{row['model']} int8 argmax mismatch "
            f"{row['argmax_mismatch_rate']:.3%} exceeds the "
            f"{QUANT_MISMATCH_BUDGET:.0%} budget")
