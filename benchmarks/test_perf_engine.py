"""Fast inference engine — perf-regression gate.

The paper's headline system claim is throughput, so the numeric
substrate has to be fast: this benchmark times the canonical hot paths
(ViT / conv / video-transformer forwards, batched CE encoding, sensor
capture) in float64 vs float32 and gates on the float32 fast path
delivering at least a 1.3x inference speedup on Table I models without
changing a single predicted class.  Results are persisted as
``benchmarks/results/perf_engine.json`` so CI tracks the trajectory.
"""

import pytest

from repro.core import remeasure_slow_models, run_perf_engine

SPEEDUP_THRESHOLD = 1.3
MIN_FAST_MODELS = 2


@pytest.mark.benchmark(group="perf_engine")
def test_perf_engine(benchmark, record_rows):
    """float32 inference is >= 1.3x float64 with identical decisions."""

    def run():
        payload = run_perf_engine(quick=True, seed=0)
        # Timing on shared hosts is noisy; give slow-looking models one
        # longer re-measurement before gating on the threshold.
        return remeasure_slow_models(payload, threshold=SPEEDUP_THRESHOLD)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("perf_engine", "Fast inference engine: float32 vs float64",
                payload)

    models = payload["models"]
    fast = [row for row in models if row["speedup"] >= SPEEDUP_THRESHOLD]
    assert len(fast) >= MIN_FAST_MODELS, (
        f"expected >= {MIN_FAST_MODELS} models at >= {SPEEDUP_THRESHOLD}x, got "
        + ", ".join(f"{row['model']}={row['speedup']:.2f}x" for row in models))

    # Dropping to float32 must never change a classification decision.
    for row in models:
        assert row["decisions_match"], f"{row['model']} argmax changed in float32"
        assert row["max_abs_logit_diff"] < 1e-4

    # Byte-video CE encode: float32 accumulates within float32 tolerance.
    assert payload["ce_encode"]["max_rel_error"] < 1e-5

    # The vectorised sensor must reproduce the per-pixel-object oracle
    # exactly — same readout charges, same CaptureStats — and be faster.
    sensor = payload["sensor"]
    assert sensor["readout_exact"]
    assert sensor["stats_exact"]
    assert sensor["speedup"] > 5.0
