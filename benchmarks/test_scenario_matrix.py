"""Scenario matrix — degradation report gate for the quick suite.

Runs the full quick suite (the same grid CI executes via
``repro scenarios --suite quick``) and gates the robustness contract:

- the report schema is complete and every row is classified;
- the quick grid has at least 20 rows spanning every category;
- the clean reference anchor reproduces the published Table I
  ``snappix_s``/``ucf101`` accuracy (``table1_accuracy.json``);
- the quick suite contains **no** ``fail`` rows — quick severities are
  calibrated to degrade gracefully, so a fail here is a regression in
  the capture path, the model, or the serving fault isolation;
- the matrix is identical across ``--workers 1`` and ``--workers N``
  (per-row seeds derive from scenario identity, not scheduling).
"""

import json
from pathlib import Path

import pytest

from repro.runtime import ArtifactStore
from repro.scenarios import (
    CATEGORIES,
    CLASSIFICATIONS,
    format_scenario_table,
    run_scenario_matrix,
    suite,
    write_scenario_matrix,
)

RESULTS_DIR = Path(__file__).parent / "results"

ROW_KEYS = {"scenario", "category", "param", "severity", "seed",
            "accuracy", "retention", "capture_snr_db", "description",
            "classification"}


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    """One disk store for the module: the 2.7s reference trains once."""
    return ArtifactStore(tmp_path_factory.mktemp("scenario-bench") / "cache")


@pytest.fixture(scope="module")
def quick_payload(shared_store):
    return run_scenario_matrix(suite_name="quick", workers=1,
                               store=shared_store, seed=0)


@pytest.mark.benchmark(group="scenarios")
def test_scenario_matrix_quick_suite(benchmark, quick_payload, shared_store):
    """Regenerate scenario_matrix.json and gate the degradation report."""

    def rerun():
        # Second pass over the shared store: pure cache hits, which is
        # exactly what the CLI re-run path costs.
        return run_scenario_matrix(suite_name="quick", workers=1,
                                   store=shared_store, seed=0)

    payload = benchmark.pedantic(rerun, rounds=1, iterations=1)
    assert payload == quick_payload
    print("\n" + format_scenario_table(payload))
    write_scenario_matrix(payload, RESULTS_DIR / "scenario_matrix.json")

    # -- schema ---------------------------------------------------------
    assert payload["suite"] == "quick"
    assert set(payload["thresholds"]) == {"pass_retention",
                                          "degrade_retention"}
    reference = payload["reference"]
    assert reference["model"] == "snappix_s"
    assert reference["dataset"] == "ucf101"
    rows = payload["rows"]
    summary = payload["summary"]
    assert summary["num_rows"] == len(rows)
    assert sum(summary["counts"].values()) == len(rows)
    for row in rows:
        assert ROW_KEYS <= set(row)
        assert row["classification"] in CLASSIFICATIONS
    assert set(summary["worst_case_by_category"]) == set(CATEGORIES)

    # -- grid size and coverage ----------------------------------------
    assert len(rows) >= 20
    assert len(rows) == len(suite("quick"))
    assert {row["category"] for row in rows} == set(CATEGORIES)

    # -- clean reference matches the published Table I cell ------------
    with open(RESULTS_DIR / "table1_accuracy.json") as handle:
        table1 = {r["model"]: r for r in json.load(handle)}
    assert reference["clean_accuracy"] == \
        table1["snappix_s"]["accuracy_ucf101"]

    # -- the quick suite must not collapse ------------------------------
    fails = [(row["scenario"], row["severity"]) for row in rows
             if row["classification"] == "fail"]
    assert not fails, f"quick-suite rows collapsed: {fails}"

    # -- serving rows hold every fault-isolation invariant --------------
    serving_rows = [row for row in rows if row["category"] == "serving"]
    assert serving_rows
    for row in serving_rows:
        assert row["invariants_ok"], row["scenario"]
        assert row["serving"]["untyped_errors"] == 0


@pytest.mark.benchmark(group="scenarios")
def test_scenario_matrix_worker_count_invariance(quick_payload, tmp_path):
    """workers=N must reproduce the workers=1 report exactly (same seeds).

    A fresh store would retrain the reference (~3s); instead the rows
    recompute against a store seeded only with the reference artifact.
    """
    import shutil

    from repro.runtime import PipelineRunner
    from repro.scenarios import ScenarioReferenceStage

    seed_store = ArtifactStore(tmp_path / "seeded")
    PipelineRunner(seed_store).run([ScenarioReferenceStage(seed=0)])
    shutil.rmtree(tmp_path / "copy", ignore_errors=True)
    shutil.copytree(tmp_path / "seeded", tmp_path / "copy")

    parallel = run_scenario_matrix(suite_name="quick", workers=4,
                                   store=ArtifactStore(tmp_path / "copy"),
                                   seed=0)
    assert json.dumps(parallel, sort_keys=True) == \
        json.dumps(quick_payload, sort_keys=True)
