"""Threaded compute backend — scaling and correctness gate.

Times the Table I models on the ``numpy`` reference backend against the
``threaded`` backend (batch/row-chunked kernels on a shared thread
pool) via :func:`repro.core.run_backend_engine` and gates on two
claims:

1. **Correctness always**: on every host, single-core included, the
   threaded backend must predict exactly the same classes as the
   reference, with logits inside float32 tolerance.
2. **Scaling on multi-core hosts**: when the runner actually has >= 2
   cores, at least two Table I models must clear a 1.3x speedup (the
   same bar the float32 engine is held to).  On single-core hosts the
   backend degrades to near-serial execution by design, so the speedup
   assertion is skipped there — the same gating idiom as
   ``test_parallel_runtime``.

Results are persisted as ``benchmarks/results/backend_engine.json`` so
CI tracks the trajectory across hosts.
"""

import os

import pytest

from repro.core import remeasure_slow_backends, run_backend_engine

SPEEDUP_THRESHOLD = 1.3
MIN_FAST_MODELS = 2


@pytest.mark.benchmark(group="backend_engine")
def test_backend_engine(benchmark, record_rows):
    """threaded >= 1.3x numpy on >= 2 models (multi-core); same decisions."""

    def run():
        payload = run_backend_engine(backend="threaded", quick=True, seed=0)
        # Timing on shared hosts is noisy; give slow-looking models one
        # longer re-measurement before gating (no-op on single core).
        return remeasure_slow_backends(payload, threshold=SPEEDUP_THRESHOLD)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("backend_engine",
                "Compute backends: threaded vs numpy reference", payload)

    models = payload["models"]
    assert models, "backend engine produced no rows"

    # Correctness gate holds on every host: the threaded backend reuses
    # the reference arithmetic per chunk, so predictions never change.
    for row in models:
        assert row["decisions_match"], (
            f"{row['model']} argmax changed on the threaded backend")
        assert row["max_abs_logit_diff"] < 1e-4, (
            f"{row['model']} logits drifted by {row['max_abs_logit_diff']}")

    cores = os.cpu_count() or 1
    if cores >= 2:
        fast = [row for row in models
                if row["speedup"] >= SPEEDUP_THRESHOLD]
        assert len(fast) >= MIN_FAST_MODELS, (
            f"expected >= {MIN_FAST_MODELS} models at >= "
            f"{SPEEDUP_THRESHOLD}x on a {cores}-core host, got "
            + ", ".join(f"{row['model']}={row['speedup']:.2f}x"
                        for row in models))
