"""Sec. VII (related work) — digital-domain compression vs in-sensor CE.

The paper's argument against digital compression is quantitative: even
with dedicated hardware it costs nJ/pixel (orders of magnitude above the
pJ/pixel scale of sensing) and it runs after read-out, so it cannot save
any ADC/MIPI energy.  This benchmark runs the from-scratch JPEG-class
codec on synthetic frames to measure real compression ratios, sweeps its
quality factor, and places the resulting edge energy next to SnapPix's
in-sensor CE at matched temporal footage.
"""

import pytest

from repro.analysis import sweep_digital_codec_quality
from repro.compression import (
    DigitalCompressionEnergyModel,
    JPEGLikeCodec,
    JPEGLikeConfig,
    rate_distortion_curve,
)
from repro.data import build_pretrain_dataset


@pytest.mark.benchmark(group="digital_compression")
def test_digital_codec_quality_sweep(benchmark, record_rows):
    """Edge energy of JPEG-class compression across its quality range."""

    def run():
        return sweep_digital_codec_quality(qualities=(10, 25, 50, 75, 90),
                                           frame_size=32, num_slots=16,
                                           num_frames_measured=4, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("digital_codec_quality", "Sec. VII: digital codec quality sweep",
                rows)

    for row in rows:
        # The codec really compresses, and in-sensor CE still wins on energy.
        assert row["measured_compression_ratio"] > 1.0
        assert row["ce_saving_factor"] > 1.0
    # Lower quality compresses harder (monotone rate).
    ratios = [row["measured_compression_ratio"] for row in rows]
    assert ratios == sorted(ratios, reverse=True)


@pytest.mark.benchmark(group="digital_compression")
def test_rate_distortion_curve(benchmark, record_rows):
    """Rate-distortion behaviour of the JPEG-class codec on a synthetic frame."""
    frame = build_pretrain_dataset(num_clips=1, num_frames=1, frame_size=32,
                                   seed=3)[0, 0]

    def run():
        return [point.as_dict()
                for point in rate_distortion_curve(frame,
                                                   qualities=(10, 25, 50, 75, 90))]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("rate_distortion", "Sec. VII: JPEG-class rate-distortion", rows)

    rates = [row["bits_per_pixel"] for row in rows]
    psnrs = [row["psnr_db"] for row in rows]
    # Higher quality -> more bits and better reconstruction.
    assert rates == sorted(rates)
    assert psnrs == sorted(psnrs)
    assert all(row["compression_ratio"] > 1.0 for row in rows)


@pytest.mark.benchmark(group="digital_compression")
def test_digital_energy_never_beats_in_sensor(benchmark, record_rows):
    """Even an idealised digital codec (ratio = T) cannot match in-sensor CE."""

    def run():
        rows = []
        for link in ("passive_wifi", "lora_backscatter"):
            model = DigitalCompressionEnergyModel(112, 112, 16,
                                                  compression_ratio=16.0)
            comparison = model.compare_with_in_sensor_ce(link)
            rows.append({
                "link": link,
                "digital_total_j": comparison.baseline.total,
                "snappix_total_j": comparison.snappix.total,
                "ce_saving_factor": comparison.saving_factor,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("digital_vs_in_sensor", "Sec. VII: digital vs in-sensor energy",
                rows)
    for row in rows:
        assert row["ce_saving_factor"] > 1.0
    # The advantage is largest where transmission is cheap and read-out
    # dominates (short range): there digital compression saves almost
    # nothing while CE saves the full 16x on ADC/MIPI.
    by_link = {row["link"]: row["ce_saving_factor"] for row in rows}
    assert by_link["passive_wifi"] > by_link["lora_backscatter"] * 0.9
