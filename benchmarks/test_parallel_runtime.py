"""Benchmark: parallel runtime scaling and cache safety under contention.

Two acceptance checks for the process-safe parallel runtime:

1. A cold-cache design-space sweep executed with ``workers=4`` against
   ``workers=1``.  The per-grid-point work (CE einsum correlation over a
   shared clip pool) releases the GIL, so on a multi-core runner the
   parallel sweep is measurably faster; the speed-up assertion is gated
   on the host actually having more than one core.
2. A write-contention stress test: 8 concurrent writers hammer one
   on-disk :class:`~repro.runtime.artifacts.ArtifactStore` (shared and
   distinct keys).  Afterwards *every* stored pickle must load and
   round-trip — zero corrupted artifacts, zero leftover temp files.
"""

import os
import pickle
import threading
import time

import numpy as np

from repro.analysis import sweep_exposure_density
from repro.runtime import ArtifactStore, fingerprint

SWEEP_KWARGS = dict(densities=(0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9),
                    num_slots=16, tile_size=8, frame_size=112, num_clips=128,
                    seed=0)


def _timed_cold_sweep(cache_dir, workers):
    start = time.perf_counter()
    rows = sweep_exposure_density(
        store=ArtifactStore(cache_dir), workers=workers, **SWEEP_KWARGS)
    return rows, time.perf_counter() - start


def test_parallel_cold_cache_sweep(tmp_path, record_rows):
    cores = os.cpu_count() or 1
    # Up to two attempts: a single wall-clock comparison on a shared CI
    # runner can be perturbed by noisy neighbours; a genuine scaling
    # regression fails both.
    attempts = []
    for attempt in range(2):
        serial_rows, serial_seconds = _timed_cold_sweep(
            tmp_path / f"serial-{attempt}", workers=1)
        parallel_rows, parallel_seconds = _timed_cold_sweep(
            tmp_path / f"parallel-{attempt}", workers=4)
        assert parallel_rows == serial_rows  # bit-identical grid rows
        attempts.append((serial_seconds, parallel_seconds))
        if parallel_seconds < serial_seconds:
            break

    serial_seconds, parallel_seconds = attempts[-1]
    rows = [{
        "grid_points": float(len(SWEEP_KWARGS["densities"])),
        "cpu_cores": float(cores),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(parallel_seconds, 1e-9),
    }]
    record_rows("parallel_runtime", "cold-cache sweep, workers=4 vs workers=1",
                rows)
    if cores >= 2:
        # On a multi-core runner the GIL-releasing einsum grid points
        # overlap, so four workers must beat one.
        assert any(parallel < serial for serial, parallel in attempts)


def test_concurrent_writer_stress(tmp_path, record_rows):
    """>= 8 concurrent writers, zero corrupted artifacts afterwards."""
    writers = 8
    iterations = 15
    store = ArtifactStore(tmp_path / "cache")
    # Contended keys (every writer hits them) plus per-writer keys.
    shared_keys = [f"shared-{i}" for i in range(3)]
    valid = {}  # key -> set of complete-payload fingerprints
    valid_lock = threading.Lock()
    errors = []

    def write_loop(writer):
        rng = np.random.default_rng(writer)
        try:
            for step in range(iterations):
                if step % 2 == 0:
                    key = shared_keys[step % len(shared_keys)]
                else:
                    key = f"writer-{writer}-{step}"
                payload = {"writer": writer, "step": step,
                           "data": rng.random((64, 256))}
                with valid_lock:
                    valid.setdefault(key, set()).add(fingerprint(payload))
                store.put(key, payload)
                value = store.get(key)
                assert value is not None
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=write_loop, args=(i,))
               for i in range(writers)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors

    # Every artifact on disk must unpickle and round-trip to a payload
    # some writer actually produced — a torn write would fail both.
    corrupted = 0
    files = sorted((tmp_path / "cache").glob("*.pkl"))
    for path in files:
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
            assert fingerprint(value) in valid[path.stem]
        except (pickle.PickleError, EOFError, AssertionError):
            corrupted += 1
    assert corrupted == 0
    assert not list((tmp_path / "cache").glob("*.tmp"))
    assert store.stats.corrupt_drops == 0

    record_rows("parallel_store_stress", "8-writer ArtifactStore stress", [{
        "writers": float(writers),
        "puts": float(store.stats.puts),
        "artifacts_on_disk": float(len(files)),
        "corrupted": float(corrupted),
        "seconds": elapsed,
    }])
