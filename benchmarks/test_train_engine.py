"""Fast training engine — perf-regression gate.

The training-side twin of ``test_perf_engine.py``: times full
optimisation steps (forward + cross-entropy + backward + gradient
clipping + AdamW) in float64 vs float32 on the Table I training models
and gates on the float32 engine delivering at least a 1.5x steps/sec
speedup on at least two models — with statistically equivalent loss
trajectories and identical post-training eval decisions, so the speed
never comes at the cost of a different optimisation path.  Results are
persisted as ``benchmarks/results/train_engine.json`` so CI tracks the
trajectory.
"""

import pytest

from repro.core import remeasure_slow_training, run_train_engine

SPEEDUP_THRESHOLD = 1.5
MIN_FAST_MODELS = 2

#: Max relative divergence of the float32 loss trajectory from the
#: float64 one.  The engines run the same step sequence from the same
#: init; over the short benchmark horizon rounding alone separates
#: them, which stays orders of magnitude below this bound.
LOSS_TOLERANCE = 1e-3


@pytest.mark.benchmark(group="train_engine")
def test_train_engine(benchmark, record_rows):
    """float32 training is >= 1.5x float64 with equivalent trajectories."""

    def run():
        payload = run_train_engine(quick=True, seed=0)
        # Timing on shared hosts is noisy; give slow-looking models one
        # longer re-measurement before gating on the threshold.
        return remeasure_slow_training(payload, threshold=SPEEDUP_THRESHOLD)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("train_engine", "Fast training engine: float32 vs float64",
                payload)

    rows = payload["models"]
    fast = [row for row in rows if row["speedup"] >= SPEEDUP_THRESHOLD]
    assert len(fast) >= MIN_FAST_MODELS, (
        f"expected >= {MIN_FAST_MODELS} models at >= {SPEEDUP_THRESHOLD}x, got "
        + ", ".join(f"{row['model']}={row['speedup']:.2f}x" for row in rows))

    # Speed must not change what training computes: the float32 loss
    # curve shadows the float64 one and the trained models agree on
    # every held-out decision.
    for row in rows:
        assert row["loss_max_rel_diff"] < LOSS_TOLERANCE, (
            f"{row['model']} float32 loss trajectory diverged: "
            f"{row['loss_max_rel_diff']:.2e}")
        assert row["eval_decisions_match"], (
            f"{row['model']} trained float32 model changed eval decisions")
        assert len(row["loss_trajectory_64"]) == row["num_steps"]
