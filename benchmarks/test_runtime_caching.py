"""Benchmark: staged-runtime artifact caching for repeated sweeps.

A design-space sweep re-invoked with an unchanged configuration (a
common pattern while iterating on plots or serving repeated requests)
used to re-learn every exposure pattern from scratch.  With a persistent
:class:`~repro.runtime.artifacts.ArtifactStore`, the second sweep
resolves the pool-synthesis and pattern-learning stages from the cache.
This benchmark measures the cold-cache and warm-cache wall times and the
resulting speed-up.
"""

import time

from repro.analysis import sweep_exposure_slots
from repro.runtime import ArtifactStore

SWEEP_KWARGS = dict(num_slots_values=(4, 8, 16), frame_size=32, tile_size=8,
                    measure_correlation=True, num_clips=24, seed=0)


def test_warm_cache_sweep_beats_cold(tmp_path, record_rows):
    store = ArtifactStore(tmp_path / "cache")

    start = time.perf_counter()
    cold_rows = sweep_exposure_slots(store=store, **SWEEP_KWARGS)
    cold_seconds = time.perf_counter() - start
    assert store.stats.puts > 0

    start = time.perf_counter()
    warm_rows = sweep_exposure_slots(store=store, **SWEEP_KWARGS)
    warm_seconds = time.perf_counter() - start

    assert warm_rows == cold_rows
    # Warm sweep recomputes nothing: pattern learning and pool synthesis
    # for every grid point come out of the artifact store.
    assert store.stats.misses == len(SWEEP_KWARGS["num_slots_values"]) * 2
    assert warm_seconds < cold_seconds

    rows = [{
        "grid_points": float(len(SWEEP_KWARGS["num_slots_values"])),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
        "stage_cache_hits": float(store.stats.hits),
    }]
    record_rows("runtime_caching", "staged-runtime sweep caching", rows)


def test_disk_cache_survives_process_analog(tmp_path):
    """A fresh store over the same directory (new-process analog) still hits."""
    cache_dir = tmp_path / "cache"
    sweep_exposure_slots(store=ArtifactStore(cache_dir), **SWEEP_KWARGS)

    fresh = ArtifactStore(cache_dir)
    start = time.perf_counter()
    rows = sweep_exposure_slots(store=fresh, **SWEEP_KWARGS)
    warm_seconds = time.perf_counter() - start
    assert fresh.stats.puts == 0
    assert fresh.stats.disk_loads > 0
    assert len(rows) == len(SWEEP_KWARGS["num_slots_values"])
    print(f"\nfresh-store warm sweep: {warm_seconds:.3f}s "
          f"({fresh.stats.disk_loads} artifacts loaded from disk)")
