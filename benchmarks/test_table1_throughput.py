"""Table I (last column) — inference throughput of every system.

The paper measures inferences/second at batch size 64 on an RTX 4090; here
the same models (at reproduction scale) are timed on the CPU.  The claim
being reproduced is relative: models that consume a single coded image
(SNAPPIX, SVC2D's CNN) are faster than models that consume the full
16-frame clip (C3D, VideoMAEv2-ST) at comparable capacity.
"""

import pytest

from repro.core import run_throughput_comparison


@pytest.mark.benchmark(group="table1")
def test_table1_throughput(benchmark, record_rows):
    """Regenerate the inference/sec column of Table I."""

    def run():
        return run_throughput_comparison(frame_size=32, num_slots=16, tile_size=8,
                                         batch_size=8, repeats=2, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("table1_throughput", "Table I: inference throughput", rows)

    speed = {row["model"]: row["inference_per_second"] for row in rows}
    assert speed["snappix_s"] > speed["videomae_st"]
    assert speed["snappix_s"] > speed["c3d"]
    assert speed["snappix_s"] > speed["snappix_b"]  # S is the faster variant
    for value in speed.values():
        assert value > 0
