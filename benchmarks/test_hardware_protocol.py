"""Sec. V / Fig. 5 — CE pixel protocol correctness and control activity.

Runs the slot-level stacked-sensor simulation and checks that the
hardware protocol (DFF shift-register loads, pattern reset, exposure,
pattern transfer, single read-out) produces exactly the coded image of
Eqn. 1, and reports the control activity that underlies the 9 pJ/pixel
CE energy overhead.
"""

import numpy as np
import pytest

from repro.ce import CEConfig, coded_exposure, expand_tile_pattern, random_pattern
from repro.energy import constants
from repro.hardware import StackedCESensor


@pytest.mark.benchmark(group="hardware")
def test_hardware_protocol_equivalence(benchmark, record_rows):
    """The Fig. 5 protocol computes Eqn. 1 exactly; report activity counters."""
    rng = np.random.default_rng(0)
    config = CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)
    pattern = random_pattern(8, 4, rng=rng)
    video = rng.random((8, 16, 16))

    def run():
        sensor = StackedCESensor(config, pattern)
        coded = sensor.capture(video)
        stats = sensor.capture_stats()
        reference = coded_exposure(video, expand_tile_pattern(pattern, 16, 16))
        return {
            "max_abs_error_vs_eqn1": float(np.max(np.abs(coded - reference))),
            "pattern_clock_cycles": stats.pattern_clock_cycles,
            "dff_writes": stats.dff_writes,
            "pd_resets": stats.pd_resets,
            "charge_transfers": stats.charge_transfers,
            "pixels_read": stats.pixels_read,
            "pattern_load_time_us": stats.pattern_clock_cycles
            / sensor.num_tiles / constants.PATTERN_CLOCK_HZ * 1e6,
        }

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("hardware_protocol", "Sec. V: CE pixel protocol simulation",
                [summary])

    assert summary["max_abs_error_vs_eqn1"] < 1e-12
    assert summary["pixels_read"] == 16 * 16
    # Two pattern loads per slot per pixel.
    assert summary["dff_writes"] == 2 * 8 * 16 * 16
    assert summary["pattern_clock_cycles"] == 2 * 8 * 16 * 16
