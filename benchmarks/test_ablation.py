"""Sec. VI-E — ablation study on the SSV2 analog (AR task).

Four configurations are trained: the full system, one without
pre-training, one with a random instead of the decorrelated pattern, and
one with a global (non-tile-repetitive) pattern.  The paper reports each
removal degrading accuracy (by 11.39, a further 3.43, and 23.74
percentage points respectively); the reproduction checks the direction of
those effects at its reduced scale.
"""

import pytest

from repro.core import PipelineConfig, run_ablation


def _ablation_config():
    return PipelineConfig(frame_size=32, num_slots=8, tile_size=8,
                          model_variant="tiny", pattern_epochs=5, pattern_lr=0.1,
                          pretrain_epochs=8, finetune_epochs=36,
                          pretrain_clips=48, train_clips_per_class=14,
                          test_clips_per_class=6, batch_size=8, lr=2e-3)


@pytest.mark.benchmark(group="ablation")
def test_ablation_study(benchmark, record_rows):
    """Regenerate the Sec. VI-E ablation rows."""

    def run():
        return run_ablation(config=_ablation_config(), seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation", "Sec. VI-E: ablation study", rows)

    by_variant = {row["variant"]: row["accuracy"] for row in rows}
    assert set(by_variant) == {"full", "no_pretraining", "random_pattern",
                               "global_pattern"}
    for accuracy in by_variant.values():
        assert 0.0 <= accuracy <= 1.0
    # Directional claim that reproduces at this scale: with pre-training
    # removed from both, the decorrelated pattern is at least as accurate
    # as the random pattern (the paper's 3.43-point pattern ablation).
    # The pre-training and tile-repetition deltas are recorded but not
    # asserted — they require the paper's data/model scale (see
    # EXPERIMENTS.md, Sec. VI-E entry).
    assert by_variant["no_pretraining"] >= by_variant["random_pattern"] - 0.05
    # Every trained variant should be clearly above the 1/num_classes
    # chance level (1/6 for the SSV2 analog).
    chance = 1.0 / 6.0
    for variant in ("full", "no_pretraining", "random_pattern", "global_pattern"):
        assert by_variant[variant] >= chance - 0.05
