"""Design-choice ablations called out in DESIGN.md (beyond the paper's tables).

Three sweeps around the paper's operating point (T = 16, N = 8, learned
decorrelated pattern):

- exposure-slot count ``T`` — energy saving scales with the compression
  ratio, which is the paper's central knob;
- CE tile size ``N`` — the Sec. V hardware argument for the per-pixel
  shift-register design over wire broadcast;
- pattern exposure density — interpolates between the SPARSE RANDOM,
  RANDOM, and LONG EXPOSURE baselines of Fig. 6 and shows the
  density/decorrelation trade-off the learned pattern navigates.
"""

import pytest

from repro.analysis import (
    sweep_exposure_density,
    sweep_exposure_slots,
    sweep_tile_size,
)


@pytest.mark.benchmark(group="design_sweeps")
def test_exposure_slot_sweep(benchmark, record_rows):
    """Energy savings as a function of the exposure-slot count T."""

    def run():
        return sweep_exposure_slots((4, 8, 16, 32), frame_size=112)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("sweep_exposure_slots", "Design sweep: exposure slots T", rows)

    by_slots = {row["num_slots"]: row for row in rows}
    # The read-out reduction is exactly T, and T = 16 reproduces the
    # paper's 7.6x / 15.4x scenario savings.
    for num_slots, row in by_slots.items():
        assert row["readout_reduction"] == pytest.approx(num_slots)
    assert 7.0 < by_slots[16.0]["short_range_saving"] < 8.2
    assert 14.0 < by_slots[16.0]["long_range_saving"] < 16.5
    savings = [row["long_range_saving"] for row in rows]
    assert savings == sorted(savings)


@pytest.mark.benchmark(group="design_sweeps")
def test_tile_size_sweep(benchmark, record_rows):
    """Hardware consequences of the CE tile size (Sec. V trade-off)."""

    def run():
        return sweep_tile_size((4, 8, 14, 16), node_nm=22.0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("sweep_tile_size", "Design sweep: CE tile size N", rows)

    by_tile = {row["tile_size"]: row for row in rows}
    # Paper claims: shift-register logic fits at every N; broadcast wires
    # exceed the APS pixel between N = 8 and N = 14.
    assert all(row["logic_fits_under_pixel"] == 1.0 for row in rows)
    assert by_tile[8.0]["broadcast_exceeds_pixel"] == 0.0
    assert by_tile[14.0]["broadcast_exceeds_pixel"] == 1.0
    # Streaming overhead stays negligible even at N = 16 with 1 ms slots.
    assert by_tile[16.0]["streaming_overhead_fraction"] < 0.05


@pytest.mark.benchmark(group="design_sweeps")
def test_exposure_density_sweep(benchmark, record_rows):
    """Coded-pixel correlation across random-pattern exposure densities."""

    def run():
        return sweep_exposure_density((0.125, 0.25, 0.5, 0.75, 1.0),
                                      num_slots=16, tile_size=8, frame_size=32,
                                      num_clips=24, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("sweep_exposure_density", "Design sweep: pattern exposure density",
                rows)

    by_density = {row["exposure_density"]: row for row in rows}
    # Full exposure (the LONG EXPOSURE limit) is the most correlated; the
    # sparse end decorrelates best — the Fig. 6 legend ordering.
    assert by_density[1.0]["correlation"] >= by_density[0.5]["correlation"] - 1e-6
    assert by_density[0.5]["correlation"] >= by_density[0.125]["correlation"] - 0.05
    for row in rows:
        assert 0.0 <= row["correlation"] <= 1.0
