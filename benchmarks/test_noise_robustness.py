"""Extension experiment — accuracy under sensor noise.

The paper evaluates noiseless captures; this extension trains a small
CE-optimized ViT on clean coded images and re-evaluates it under the
physical noise model of ``repro.hardware.noise`` (photon shot noise,
dark current, read noise, ADC quantisation) across a sweep of full-well
capacities.  The claim checked is graceful degradation: at realistic
full-well capacities (thousands of electrons) the accuracy stays close
to the clean accuracy, because each coded pixel integrates several
exposure slots and shot noise averages out.
"""

import numpy as np
import pytest

from repro.ce import CEConfig, CodedExposureSensor, learn_decorrelated_pattern
from repro.data import build_dataset, build_pretrain_dataset
from repro.models import build_snappix_model
from repro.tasks import (
    ActionRecognitionTrainer,
    accuracy_retention,
    evaluate_under_noise,
)

FRAME_SIZE = 32
NUM_SLOTS = 8
TILE_SIZE = 8


@pytest.mark.benchmark(group="noise_robustness")
def test_noise_robustness_sweep(benchmark, record_rows):
    """Clean-trained AR accuracy across sensor full-well capacities."""

    def run():
        config = CEConfig(num_slots=NUM_SLOTS, tile_size=TILE_SIZE,
                          frame_height=FRAME_SIZE, frame_width=FRAME_SIZE)
        pool = build_pretrain_dataset(num_clips=32, num_frames=NUM_SLOTS,
                                      frame_size=FRAME_SIZE, seed=0)
        pattern = learn_decorrelated_pattern(pool, config, epochs=5,
                                             seed=0).tile_pattern
        sensor = CodedExposureSensor(config, pattern)
        dataset = build_dataset("ssv2", num_frames=NUM_SLOTS,
                                frame_size=FRAME_SIZE,
                                train_clips_per_class=12,
                                test_clips_per_class=6, seed=0)
        model = build_snappix_model("tiny", task="ar",
                                    num_classes=dataset.num_classes,
                                    image_size=FRAME_SIZE, seed=0)
        trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor,
                                           epochs=36, lr=2e-3, batch_size=8,
                                           seed=0)
        trainer.fit(evaluate_every=0)
        return evaluate_under_noise(model, dataset.test_videos,
                                    dataset.test_labels, config, pattern,
                                    full_well_values=(50000.0, 5000.0, 1000.0,
                                                      200.0), seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("noise_robustness", "Extension: accuracy under sensor noise", rows)

    clean_accuracy = rows[0]["accuracy"]
    assert clean_accuracy > 1.0 / 6.0 + 0.05  # clearly above chance
    retention = accuracy_retention(rows)
    # Graceful degradation at realistic full-well capacities: at least 80%
    # of the clean accuracy survives down to 1000 electrons.
    for point in ("full_well_50000", "full_well_5000", "full_well_1000"):
        assert retention[point] >= 0.8
    # SNR decreases monotonically as the full well shrinks.
    snrs = [row["capture_snr_db"] for row in rows[1:]]
    assert snrs == sorted(snrs, reverse=True)
