"""Fig. 6 legend / Sec. III — decorrelation pattern learning.

Benchmarks the pattern-learning stage itself and regenerates the Pearson
correlation coefficients that Fig. 6's legend attaches to each pattern
(decorrelated lowest; naive exposures highest).
"""

import numpy as np
import pytest

from repro.ce import CEConfig, DecorrelationPatternLearner
from repro.core import run_correlation_comparison
from repro.data import build_pretrain_dataset


@pytest.mark.benchmark(group="decorrelation")
def test_fig6_correlation_legend(benchmark, record_rows):
    """Mean |Pearson correlation| of coded pixels for every Fig. 6 pattern."""

    def run():
        return run_correlation_comparison(num_slots=8, tile_size=4, frame_size=16,
                                          num_clips=24, pattern_epochs=10,
                                          pattern_lr=0.1, seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("fig6_correlation_legend", "Fig. 6 legend: Pearson correlations", rows)

    by_pattern = {row["pattern"]: row["correlation"] for row in rows}
    assert by_pattern["decorrelated"] == min(by_pattern.values())
    assert by_pattern["long_exposure"] == max(by_pattern.values())


@pytest.mark.benchmark(group="decorrelation")
def test_decorrelation_training_converges(benchmark, record_rows):
    """The decorrelation loss (Eqn. 2) decreases over pattern-training steps."""
    videos = build_pretrain_dataset(num_clips=24, num_frames=8, frame_size=16, seed=1)
    config = CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)

    def run():
        learner = DecorrelationPatternLearner(config, lr=0.1, seed=0)
        losses = [learner.training_step(videos) for _ in range(20)]
        return {"initial_loss": losses[0], "final_loss": losses[-1],
                "final_correlation": learner.measure_correlation(videos),
                "exposure_density": float(learner.current_pattern().mean())}

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("decorrelation_convergence", "Decorrelation training convergence",
                [summary])
    assert summary["final_loss"] < summary["initial_loss"]
    assert summary["exposure_density"] > 0.0
    assert np.isfinite(summary["final_correlation"])
