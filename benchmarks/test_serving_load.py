"""Multi-lane serving fleet — scaling and tail-latency gates.

The fleet exists to turn lane count into throughput without corrupting
results or fattening the tail, so the gates measure exactly that:

- **lane scaling** — closed-burst throughput at the widest lane count
  must reach >= 1.7x the single-lane throughput on multi-core hosts,
  with every width predicting labels identical to the sequential
  reference;
- **tail latency** — at the same offered load, p99 latency under bursty
  arrivals must stay within 1.5x of the uniform-arrival p99 (the
  batcher's enqueue-anchored deadline is what keeps bursts from
  compounding into tail blowups);
- **admission ordering** — under deliberate overload, sequential
  traffic is shed by policy before any batched request is refused by
  queue-full backpressure.

The full matrix payload is persisted as
``benchmarks/results/serving_load.json`` — the fleet baseline CI
uploads per PR, alongside ``serving_bench.json``.
"""

import os
from pathlib import Path

import pytest

from repro.serving import (
    run_admission_probe,
    run_serving_load_matrix,
    write_load_results,
)

SCALING_THRESHOLD = 1.7
TAIL_RATIO_THRESHOLD = 1.5
RESULTS_PATH = Path(__file__).parent / "results" / "serving_load.json"


@pytest.fixture(scope="module")
def load_payload():
    return run_serving_load_matrix(quick=True)


def _throughput_by_lanes(payload):
    return {row["lanes"]: row["inference_per_second"]
            for row in payload["lane_scaling"]}


def _tail_ratio(payload):
    p99 = {row["scenario"]: row["latency_p99_ms"]
           for row in payload["scenarios"]}
    return p99["bursty"] / max(p99["uniform"], 1e-9)


@pytest.mark.benchmark(group="serving")
def test_load_matrix_correct_and_admitted(load_payload, record_rows):
    """Every matrix row is decision-correct; the artifact is persisted."""
    rows = load_payload["lane_scaling"] + load_payload["scenarios"]
    record_rows("serving_fleet", "Serving fleet load matrix", rows)
    write_load_results(load_payload, RESULTS_PATH)

    # Correctness first: no lane width or arrival profile may diverge
    # from the sequential reference, and the load generator sizes every
    # queue so backpressure never fires in the measured scenarios.
    for row in rows:
        assert row["labels_match_sequential"], (
            f"scenario {row['scenario']} diverged from the sequential "
            f"reference at {row['lanes']} lanes")
        assert row["rejected"] == 0, (
            f"scenario {row['scenario']} saw backpressure rejections")

    admission = load_payload["admission"]
    assert admission["admission_ordering_ok"], admission
    assert load_payload["profile"]["offered_rate"] >= 1.0


@pytest.mark.benchmark(group="serving")
def test_lane_scaling_reaches_threshold(load_payload):
    """Widest fleet >= 1.7x single lane throughput on multi-core hosts."""
    attempts = [_throughput_by_lanes(load_payload)]
    widest = max(attempts[0])
    assert widest >= 4  # the quick profile must actually test 4 lanes

    def passes(by_lanes):
        return by_lanes[widest] >= SCALING_THRESHOLD * by_lanes[1]

    cores = os.cpu_count() or 1
    if cores >= 2 and not passes(attempts[0]):
        # Timing on shared hosts is noisy; one re-measurement keeps a
        # descheduled round from failing the gate (perf_engine idiom).
        attempts.append(_throughput_by_lanes(run_serving_load_matrix(quick=True)))

    if cores >= 2:
        assert any(passes(by_lanes) for by_lanes in attempts), (
            f"expected >= {SCALING_THRESHOLD}x throughput at {widest} lanes "
            "vs 1 lane, got " + "; ".join(
                f"{by[widest] / by[1]:.2f}x" for by in attempts))
    else:
        # Single core: lanes cannot scale, but they must not corrupt —
        # the correctness assertions above already ran; here we only
        # require the fleet not to collapse under the extra lanes.
        assert attempts[0][widest] > 0.25 * attempts[0][1]


@pytest.mark.benchmark(group="serving")
def test_bursty_p99_within_tail_budget(load_payload):
    """Bursty-arrival p99 <= 1.5x uniform-arrival p99 at equal load."""
    ratios = [_tail_ratio(load_payload)]
    if ratios[0] > TAIL_RATIO_THRESHOLD:
        ratios.append(_tail_ratio(run_serving_load_matrix(quick=True)))
    assert min(ratios) <= TAIL_RATIO_THRESHOLD, (
        "bursty arrivals fattened the tail beyond budget: p99 ratios "
        + ", ".join(f"{ratio:.2f}x" for ratio in ratios)
        + f" (budget {TAIL_RATIO_THRESHOLD}x)")


def test_admission_sheds_sequential_first():
    """Deterministic probe: policy shed strictly precedes backpressure."""
    probe = run_admission_probe()
    assert probe["shed_sequential"] > 0
    assert probe["shed_batched"] == 0
    assert probe["rejected_batched"] > 0  # 3x capacity guarantees overflow
    assert probe["first_shed_index"] < probe["first_batched_rejection_index"]
    assert probe["admission_ordering_ok"]
