"""Fig. 6 — task-agnostic CE pattern comparison (AR accuracy vs REC PSNR).

For every exposure pattern (decorrelated, sparse-random, random, long,
short) a CE-optimized ViT is trained from scratch for action recognition
and for reconstruction on the SSV2 analog, and the coded-pixel Pearson
correlation is measured — the three quantities Fig. 6 reports.
"""

import pytest

from repro.core import FIG6_PATTERNS, PipelineConfig, run_pattern_comparison


def _fig6_config():
    return PipelineConfig(frame_size=32, num_slots=8, tile_size=8,
                          model_variant="tiny", pattern_epochs=5, pattern_lr=0.1,
                          pretrain_epochs=1, finetune_epochs=40,
                          pretrain_clips=48, train_clips_per_class=16,
                          test_clips_per_class=6, batch_size=8, lr=2e-3)


@pytest.mark.benchmark(group="fig6")
def test_fig6_pattern_comparison(benchmark, record_rows):
    """Regenerate Fig. 6: one (correlation, AR accuracy, REC PSNR) row per pattern."""

    def run():
        return run_pattern_comparison(patterns=FIG6_PATTERNS,
                                      use_pretraining=False,
                                      config=_fig6_config(), seed=0)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("fig6_pattern_comparison", "Fig. 6: CE pattern comparison", rows)

    by_pattern = {row["pattern"]: row for row in rows}
    assert set(by_pattern) == set(FIG6_PATTERNS)
    # Shape checks: every pattern produced valid metrics, and the learned
    # decorrelated pattern has the lowest coded-pixel correlation — the
    # mechanism Fig. 6's legend highlights.
    for row in rows:
        assert 0.0 <= row["ar_accuracy"] <= 1.0
        assert row["rec_psnr"] > 0.0
        assert 0.0 <= row["correlation"] <= 1.0
    naive_correlations = [by_pattern["long_exposure"]["correlation"],
                          by_pattern["short_exposure"]["correlation"]]
    assert by_pattern["decorrelated"]["correlation"] <= min(naive_correlations)
    # Fig. 6's headline: the decorrelated pattern is the best (or tied best)
    # choice across *both* tasks, while the naive exposures trail on AR.
    assert by_pattern["decorrelated"]["ar_accuracy"] >= \
        max(by_pattern["long_exposure"]["ar_accuracy"],
            by_pattern["short_exposure"]["ar_accuracy"]) - 0.05
    assert by_pattern["decorrelated"]["rec_psnr"] >= \
        by_pattern["short_exposure"]["rec_psnr"] - 0.5
