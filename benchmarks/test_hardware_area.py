"""Sec. V ("Area Overhead") — hardware area model.

Regenerates the paper's area argument: the per-pixel CE logic shrinks
from 30 um^2 (65 nm) to ~3.2 um^2 (22 nm) and hides under the APS pixel,
while the wire-broadcast alternative needs 2N wires per pixel and its
bundle area overtakes the APS as the tile grows from N = 8 to N = 14.
"""

import pytest

from repro.hardware import (
    broadcast_wire_area,
    broadcast_wire_side,
    broadcast_wires_per_pixel,
    ce_logic_area,
    pixel_area_report,
)


@pytest.mark.benchmark(group="hardware")
def test_hardware_area_report(benchmark, record_rows):
    """Area of the CE logic and of the broadcast alternative across tile sizes."""

    def run():
        rows = []
        for tile in (4, 8, 14, 16):
            report = pixel_area_report(node_nm=22.0, tile_size=tile)
            rows.append({
                "tile_size": tile,
                "ce_logic_area_um2": report.ce_logic_area_um2,
                "broadcast_wires_per_pixel": broadcast_wires_per_pixel(tile),
                "broadcast_wire_side_um": broadcast_wire_side(tile),
                "broadcast_wire_area_um2": broadcast_wire_area(tile),
                "aps_pixel_area_um2": report.aps_pixel_area_um2,
                "logic_fits_under_pixel": report.logic_fits_under_pixel,
                "broadcast_exceeds_pixel": report.broadcast_exceeds_pixel,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    record_rows("hardware_area", "Sec. V: area overhead", rows)

    by_tile = {row["tile_size"]: row for row in rows}
    # Paper data points: 30 um^2 @ 65 nm -> 3.2 um^2 @ 22 nm; wire side
    # 2.24 um @ N=8 and 3.92 um @ N=14.
    assert ce_logic_area(65.0) == pytest.approx(30.0)
    assert ce_logic_area(22.0) == pytest.approx(3.2, rel=0.02)
    assert by_tile[8]["broadcast_wire_side_um"] == pytest.approx(2.24, rel=0.01)
    assert by_tile[14]["broadcast_wire_side_um"] == pytest.approx(3.92, rel=0.01)
    # The shift-register logic always fits under the pixel; the broadcast
    # alternative stops fitting as the tile grows.
    assert all(row["logic_fits_under_pixel"] for row in rows)
    assert not by_tile[8]["broadcast_exceeds_pixel"]
    assert by_tile[14]["broadcast_exceeds_pixel"]
