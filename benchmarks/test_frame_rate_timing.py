"""Sec. V — pattern-streaming and read-out timing feasibility.

The paper's hardware argument implicitly requires that streaming the CE
pattern into the per-pixel shift registers (twice per exposure slot at
20 MHz) does not eat into the exposure budget, and that the single coded
read-out keeps the sensor faster than a conventional sensor covering the
same footage.  This benchmark regenerates those timing numbers for the
paper's geometry (112 x 112, T = 16, N = 8).
"""

import pytest

from repro.hardware import FrameRateModel, PatternStreamTiming, ReadoutTiming


@pytest.mark.benchmark(group="timing")
def test_frame_rate_report(benchmark, record_rows):
    """Coded-frame timing at the paper's operating point."""

    def run():
        rows = []
        for slot_exposure_ms in (0.5, 1.0, 2.0):
            model = FrameRateModel(
                stream=PatternStreamTiming(tile_size=8, num_slots=16,
                                           clock_hz=20e6),
                readout=ReadoutTiming(112, 112),
                slot_exposure_s=slot_exposure_ms * 1e-3)
            row = {"slot_exposure_ms": slot_exposure_ms}
            row.update(model.report())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    record_rows("frame_rate_timing", "Sec. V: pattern streaming / read-out timing",
                rows)

    for row in rows:
        # 64 bits at 20 MHz = 3.2 us per load; two loads per slot.
        assert row["bits_per_load"] == 64
        assert row["pattern_time_per_slot_s"] == pytest.approx(6.4e-6)
        # Streaming never consumes more than ~1.3% of the exposure slot.
        assert row["streaming_overhead_fraction"] < 0.013
        # CE reads out once per coded image -> 16x read-out time reduction,
        # and covering T frames takes less time than a conventional sensor.
        assert row["readout_time_reduction"] == pytest.approx(16.0)
        assert row["coded_frame_time_s"] < row["conventional_clip_time_s"]
        assert row["coded_frame_rate_hz"] > 0
