"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
measured rows are printed to stdout (visible with ``pytest -s`` or in the
captured output) and written as JSON under ``benchmarks/results/`` so the
numbers recorded in EXPERIMENTS.md can be regenerated.
"""

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, payload) -> None:
    """Persist a benchmark's measured rows as JSON for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as handle:
        json.dump(payload, handle, indent=2, default=float)


def print_rows(title: str, rows) -> None:
    """Pretty-print a list of row dictionaries as an aligned table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    if isinstance(rows, dict):
        rows = [rows]
    keys = list(rows[0].keys())
    header = " | ".join(f"{key:>22}" for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:>22.4f}")
            else:
                cells.append(f"{str(value):>22}")
        print(" | ".join(cells))


@pytest.fixture
def record_rows():
    """Fixture returning a helper that both prints and saves benchmark rows."""

    def _record(name: str, title: str, rows):
        print_rows(title, rows)
        save_result(name, rows)
        return rows

    return _record
