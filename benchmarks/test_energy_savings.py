"""Sec. VI-D — edge energy savings.

Regenerates the paper's headline energy numbers:

- 16x ADC/MIPI and wireless-transmission reduction at T = 16,
- 7.6x edge energy saving with short-range passive WiFi,
- 15.4x saving with long-range LoRa backscatter,
- 1.4x / 4.5x savings in the edge-GPU scenario vs VideoMAEv2-ST / C3D,
- the in-sensor-vs-digital-compression comparison (Sec. VII), and
- the accuracy comparison against the 4x4 spatial-downsampling baseline.
"""

import pytest

from repro.core import run_downsample_comparison
from repro.energy import EdgeSensingScenario, paper_energy_summary


@pytest.mark.benchmark(group="energy")
def test_energy_saving_factors(benchmark, record_rows):
    """The analytic energy factors of Sec. VI-D at the paper's geometry."""
    summary = benchmark.pedantic(paper_energy_summary, rounds=3, iterations=1)
    record_rows("energy_saving_factors", "Sec. VI-D: energy saving factors",
                [summary])

    assert summary["readout_reduction"] == pytest.approx(16.0)
    assert summary["transmission_reduction"] == pytest.approx(16.0)
    assert 7.0 < summary["short_range_saving"] < 8.2          # paper: 7.6x
    assert 14.0 < summary["long_range_saving"] < 16.5         # paper: 15.4x
    assert 1.1 < summary["edge_gpu_saving_vs_videomae"] < 2.2  # paper: 1.4x
    assert 3.5 < summary["edge_gpu_saving_vs_c3d"] < 5.5       # paper: 4.5x


@pytest.mark.benchmark(group="energy")
def test_energy_breakdown_reports(benchmark, record_rows):
    """Per-component energy breakdowns for both transmission technologies."""

    def run():
        scenario = EdgeSensingScenario(112, 112, 16)
        rows = []
        for link in ("passive_wifi", "lora_backscatter"):
            comparison = scenario.edge_server(link)
            baseline = comparison.baseline.as_dict()
            snappix = comparison.snappix.as_dict()
            baseline["scenario"] = snappix["scenario"] = comparison.scenario
            rows.extend([baseline, snappix])
        digital = scenario.digital_compression_comparison()
        rows.append({**digital.baseline.as_dict(), "scenario": digital.scenario})
        rows.append({**digital.snappix.as_dict(), "scenario": digital.scenario})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("energy_breakdowns", "Sec. VI-D: per-component energy", rows)
    for row in rows:
        assert row["total_energy_j"] > 0


@pytest.mark.benchmark(group="energy")
def test_downsampling_baseline_accuracy(benchmark, record_rows):
    """Sec. VI-D (last paragraph): CE beats 4x4 spatial downsampling at the
    same compression rate.  The paper reports a 6-16% accuracy gap."""

    def run():
        return run_downsample_comparison(frame_size=32, num_slots=8, epochs=20,
                                         seed=0)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("downsample_comparison",
                "Sec. VI-D: SnapPix vs spatial downsampling", [summary])
    assert 0.0 <= summary["snappix_accuracy"] <= 1.0
    assert 0.0 <= summary["downsample_accuracy"] <= 1.0
    assert summary["compression_ratio"] == pytest.approx(8.0)
