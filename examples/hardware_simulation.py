#!/usr/bin/env python
"""Hardware walk-through: the stacked CE pixel of Fig. 5, simulated.

Runs the slot-level protocol (shift-register pattern loading, pattern
reset, exposure, pattern transfer, read-out) on a small pixel array,
verifies that the hardware produces exactly the coded image of Eqn. 1,
and prints the control-activity and area reports of Sec. V.

Run with:  python examples/hardware_simulation.py
"""

import numpy as np

from repro.ce import CEConfig, coded_exposure, expand_tile_pattern, sparse_random_pattern
from repro.data import build_pretrain_dataset
from repro.energy import constants
from repro.hardware import (
    StackedCESensor,
    broadcast_wire_side,
    broadcast_wires_per_pixel,
    ce_logic_area,
    pixel_area_report,
)


def main():
    config = CEConfig(num_slots=8, tile_size=4, frame_height=16, frame_width=16)
    rng = np.random.default_rng(0)
    pattern = sparse_random_pattern(config.num_slots, config.tile_size, rng=rng)
    clip = build_pretrain_dataset(num_clips=1, num_frames=config.num_slots,
                                  frame_size=config.frame_height, seed=3)[0]

    print("== Functional simulation of the stacked CE sensor (Fig. 5) ==")
    sensor = StackedCESensor(config, pattern)
    hardware_image = sensor.capture(clip)
    reference = coded_exposure(clip, expand_tile_pattern(
        pattern, config.frame_height, config.frame_width))
    error = np.max(np.abs(hardware_image - reference))
    print(f"  coded image {hardware_image.shape}, "
          f"max |hardware - Eqn.1| = {error:.2e}")

    stats = sensor.capture_stats()
    load_cycles_per_tile = 2 * config.num_slots * config.pixels_per_tile
    print("  control activity per capture:")
    for key, value in stats.as_dict().items():
        print(f"    {key:22s}: {value}")
    print(f"  pattern load time per tile: "
          f"{load_cycles_per_tile / constants.PATTERN_CLOCK_HZ * 1e6:.2f} us "
          f"at a {constants.PATTERN_CLOCK_HZ / 1e6:.0f} MHz pattern clock")

    print("\n== Area overhead (Sec. V) ==")
    print(f"  CE logic: {ce_logic_area(65):.1f} um^2 at 65 nm -> "
          f"{ce_logic_area(22):.1f} um^2 at 22 nm (DeepScale-style scaling)")
    for tile in (8, 14):
        report = pixel_area_report(node_nm=22.0, tile_size=tile)
        print(f"  tile {tile:>2}x{tile:<2}: shift-register design needs 4 wires; "
              f"broadcast alternative needs {broadcast_wires_per_pixel(tile)} wires "
              f"({broadcast_wire_side(tile):.2f} um bundle side, "
              f"{'exceeds' if report.broadcast_exceeds_pixel else 'fits under'} "
              f"the APS pixel)")


if __name__ == "__main__":
    main()
