#!/usr/bin/env python
"""Video reconstruction (REC) from a single coded image.

The low-level task of the paper: recover the full T-frame clip from one
CE-compressed image, for scenarios where the video is stored for future,
undefined tasks.  The example compares the learned decorrelated pattern
against a naive long-exposure pattern in reconstruction PSNR.

Run with:  python examples/video_reconstruction.py
"""

from dataclasses import replace

from repro.core import PipelineConfig, SnapPixSystem
from repro.tasks import psnr


def run_reconstruction(pattern: str, config: PipelineConfig) -> dict:
    system = SnapPixSystem(replace(config, pattern=pattern))
    correlation = system.prepare_pattern()
    metrics = system.train_reconstruction()
    return {"pattern": pattern, "correlation": correlation,
            "psnr": metrics["test_psnr"]}


def main():
    config = PipelineConfig(dataset="ssv2", frame_size=16, num_slots=8,
                            tile_size=8, model_variant="tiny",
                            use_pretraining=False, pattern_epochs=5,
                            finetune_epochs=8, pretrain_clips=24,
                            train_clips_per_class=6, test_clips_per_class=3)

    print("Reconstructing 8-frame clips from single coded images "
          "(8x in-sensor compression)\n")
    rows = [run_reconstruction(p, config)
            for p in ("decorrelated", "long_exposure", "sparse_random")]

    print(f"{'pattern':>16} | {'pixel correlation':>18} | {'REC PSNR (dB)':>14}")
    print("-" * 56)
    for row in rows:
        print(f"{row['pattern']:>16} | {row['correlation']:>18.3f} | "
              f"{row['psnr']:>14.2f}")

    best = max(rows, key=lambda row: row["psnr"])
    print(f"\nBest reconstruction: {best['pattern']} at {best['psnr']:.2f} dB — "
          "patterns that sample all exposure slots (rather than integrating "
          "everything into one blur) retain the temporal information the "
          "decoder needs.")


if __name__ == "__main__":
    main()
