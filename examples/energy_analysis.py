#!/usr/bin/env python
"""Edge-energy analysis: sweep compression rate and transmission technology.

Regenerates the Sec. VI-D analysis with the paper's energy constants:
per-component breakdowns for the short-range (passive WiFi) and
long-range (LoRa backscatter) scenarios, the edge-GPU scenario, the
digital-compression comparison, and a sweep of the saving factor over
the number of exposure slots T.

Run with:  python examples/energy_analysis.py
"""

from repro.energy import EdgeSensingScenario, paper_energy_summary


def print_breakdown(comparison):
    for report in (comparison.baseline, comparison.snappix):
        print(f"    {report.system:22s} sensor {report.sensor_energy * 1e6:10.3f} uJ  "
              f"tx {report.transmission_energy * 1e6:10.3f} uJ  "
              f"compute {report.compute_energy * 1e6:10.3f} uJ  "
              f"total {report.total * 1e6:10.3f} uJ")
    print(f"    -> saving factor: {comparison.saving_factor:.2f}x")


def main():
    print("== Paper geometry: 112x112 pixels, T = 16 exposure slots ==\n")
    scenario = EdgeSensingScenario(112, 112, 16)

    print("Edge-server, short range (passive WiFi):")
    print_breakdown(scenario.edge_server("passive_wifi"))

    print("\nEdge-server, long range (LoRa backscatter):")
    print_breakdown(scenario.edge_server("lora_backscatter"))

    print("\nEdge-GPU scenario (Jetson-class GPU on the edge node):")
    for baseline in ("videomae_st", "c3d"):
        comparison = scenario.edge_gpu(baseline_model=baseline)
        print(f"  vs {baseline}:")
        print_breakdown(comparison)

    print("\nIn-sensor CE vs digital (JPEG-class) compression:")
    print_breakdown(scenario.digital_compression_comparison())

    print("\nHeadline factors (paper: 16x read-out, 7.6x short-range, "
          "15.4x long-range, 1.4x/4.5x edge-GPU):")
    for key, value in paper_energy_summary().items():
        print(f"  {key:30s}: {value:6.2f}x")

    print("\nSaving factor vs number of exposure slots (long-range link):")
    print(f"  {'T':>4} | {'saving':>8}")
    for slots in (2, 4, 8, 16, 32):
        sweep = EdgeSensingScenario(112, 112, slots)
        saving = sweep.edge_server("lora_backscatter").saving_factor
        print(f"  {slots:>4} | {saving:>7.2f}x")


if __name__ == "__main__":
    main()
