#!/usr/bin/env python
"""Design-space exploration around the paper's operating point.

The paper fixes T = 16 exposure slots, an 8 x 8 tile, and a learned
decorrelated pattern.  This example sweeps the design space a sensor
architect would explore before committing to silicon:

1. exposure-slot count T  -> compression ratio and edge energy savings,
2. CE tile size N         -> Sec. V area / wiring / streaming trade-off,
3. pattern exposure density -> decorrelation vs light throughput,
4. the energy/accuracy plane with its Pareto front, using Table I-style
   systems at reproduction scale (analytic energy, no training here).

Run with:  python examples/design_space_exploration.py
"""

from repro.analysis import (
    build_tradeoff_points,
    format_text_table,
    pareto_front,
    sweep_exposure_density,
    sweep_exposure_slots,
    sweep_tile_size,
)


def main():
    print("== 1. Exposure slots T (paper uses T = 16) ==")
    print(format_text_table(sweep_exposure_slots((4, 8, 16, 32))))

    print("\n== 2. CE tile size N (paper uses N = 8) ==")
    print(format_text_table(sweep_tile_size((4, 8, 14, 16))))

    print("\n== 3. Pattern exposure density ==")
    print(format_text_table(sweep_exposure_density((0.125, 0.25, 0.5, 0.75, 1.0),
                                                   num_slots=16, tile_size=8,
                                                   frame_size=32, num_clips=24)))

    print("\n== 4. Energy/accuracy plane (Table I systems, paper accuracies) ==")
    # Accuracies from Table I (SSV2 column); energies from the edge model.
    paper_ssv2_accuracy = {
        "snappix_s": 0.4238,
        "snappix_b": 0.4521,
        "svc2d": 0.2305,
        "c3d": 0.3348,
        "videomae_st": 0.3984,
    }
    model_inputs = {"snappix_s": "ce", "snappix_b": "ce", "svc2d": "ce",
                    "c3d": "video", "videomae_st": "video"}
    points = build_tradeoff_points(paper_ssv2_accuracy, model_inputs,
                                   frame_height=112, frame_width=112,
                                   num_slots=16, link="passive_wifi")
    print(format_text_table([point.as_dict() for point in points]))
    front = pareto_front(points)
    print("\nPareto-optimal systems (non-dominated on accuracy vs edge energy):")
    for point in front:
        print(f"  {point.system:12s} accuracy {point.accuracy:.3f} "
              f"energy {point.energy_j * 1e6:.2f} uJ/clip")


if __name__ == "__main__":
    main()
