#!/usr/bin/env python
"""Quickstart: the SnapPix pipeline in ~40 lines.

Learns a decorrelated coded-exposure pattern, compresses synthetic video
clips 8x inside the (simulated) sensor, trains a small CE-optimized ViT
for action recognition on the coded images, and prints the accuracy plus
the edge-energy savings of the deployment.

Run with:  python examples/quickstart.py
"""

from repro.core import PipelineConfig, SnapPixSystem


def main():
    config = PipelineConfig(
        dataset="ssv2",          # motion-defined synthetic SSV2 analog
        frame_size=16,           # 16x16 frames (112x112 in the paper)
        num_slots=8,             # T = 8 exposure slots -> 8x compression
        tile_size=8,             # CE tile == ViT patch size
        pattern="decorrelated",  # efficient-coding-inspired learned pattern
        model_variant="tiny",    # scaled-down ViT backbone
        use_pretraining=False,   # skip pre-training for the quickest run
        pattern_epochs=5,
        finetune_epochs=6,
        pretrain_clips=24,
        train_clips_per_class=6,
        test_clips_per_class=3,
    )

    system = SnapPixSystem(config)
    print("SnapPix quickstart")
    print(f"  compression ratio: {config.num_slots}x "
          f"({config.num_slots} frames -> 1 coded image)")

    result = system.run(task="ar")

    print(f"  coded-pixel correlation of learned pattern: "
          f"{result.pattern_correlation:.3f}")
    print(f"  action-recognition test accuracy:           "
          f"{result.test_accuracy:.3f}")
    print(f"  inference throughput:                       "
          f"{result.inference_per_second:.1f} clips/s")
    print("  edge energy savings (vs reading out every frame):")
    for key, value in result.energy_summary.items():
        print(f"    {key:22s}: {value:.2f}x")


if __name__ == "__main__":
    main()
