#!/usr/bin/env python
"""Noise robustness of CE-based action recognition.

The paper evaluates on noiseless simulated captures.  A real CE sensor
adds photon shot noise, dark current, read noise, and ADC quantisation
(all modelled in ``repro.hardware.noise``).  This example trains a small
CE-optimized ViT on clean coded images, then evaluates it while sweeping
the sensor's full-well capacity — the dominant noise knob as pixels
shrink — and reports how much of the clean accuracy survives.

Run with:  python examples/noise_robustness.py
"""

import numpy as np

from repro.analysis import format_text_table
from repro.ce import CEConfig, CodedExposureSensor, learn_decorrelated_pattern
from repro.data import build_dataset, build_pretrain_dataset
from repro.models import build_snappix_model
from repro.tasks import (
    ActionRecognitionTrainer,
    accuracy_retention,
    evaluate_under_noise,
)

FRAME_SIZE = 32
NUM_SLOTS = 8
TILE_SIZE = 8


def main():
    print("== 1. Learn the decorrelated pattern and train a small AR model ==")
    config = CEConfig(num_slots=NUM_SLOTS, tile_size=TILE_SIZE,
                      frame_height=FRAME_SIZE, frame_width=FRAME_SIZE)
    pool = build_pretrain_dataset(num_clips=32, num_frames=NUM_SLOTS,
                                  frame_size=FRAME_SIZE, seed=0)
    pattern = learn_decorrelated_pattern(pool, config, epochs=5, seed=0).tile_pattern
    sensor = CodedExposureSensor(config, pattern)

    dataset = build_dataset("ssv2", num_frames=NUM_SLOTS, frame_size=FRAME_SIZE,
                            train_clips_per_class=12, test_clips_per_class=6, seed=0)
    model = build_snappix_model("tiny", task="ar", num_classes=dataset.num_classes,
                                image_size=FRAME_SIZE, seed=0)
    trainer = ActionRecognitionTrainer(model, dataset, sensor=sensor, epochs=36, lr=2e-3,
                                       batch_size=8, seed=0)
    trainer.fit(evaluate_every=0)
    print(f"  clean test accuracy after training: {trainer.evaluate('test'):.3f}")

    print("\n== 2. Evaluate under sensor noise (full-well capacity sweep) ==")
    rows = evaluate_under_noise(model, dataset.test_videos, dataset.test_labels,
                                config, pattern,
                                full_well_values=(50000.0, 5000.0, 1000.0, 200.0),
                                seed=0)
    print(format_text_table(rows))

    print("\n== 3. Fraction of the clean accuracy retained ==")
    for point, fraction in accuracy_retention(rows).items():
        print(f"  {point:20s}: {fraction:.2f}")
    print("\nShot noise averages out across the exposure slots each pixel "
          "integrates, so CE captures degrade gracefully until the full-well "
          "capacity becomes very small.")


if __name__ == "__main__":
    main()
