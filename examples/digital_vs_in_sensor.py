#!/usr/bin/env python
"""Digital-domain compression vs in-sensor coded exposure (Sec. VII).

Builds the two digital baselines from scratch and places them next to
SnapPix's in-sensor CE on the same energy axis:

1. the JPEG-class codec: rate-distortion sweep on synthetic frames, with
   the measured compression ratios feeding the edge energy model;
2. the learned compressive autoencoder: trained briefly on frames, its
   measured latent entropy gives a second data-driven compression ratio;
3. the energy comparison: both digital options still pay full read-out
   plus encoder energy, so in-sensor CE wins at matched footage.

Run with:  python examples/digital_vs_in_sensor.py
"""

import numpy as np

from repro.analysis import format_text_table
from repro.compression import (
    AutoencoderConfig,
    AutoencoderTrainer,
    CompressiveAutoencoder,
    DigitalCompressionEnergyModel,
    JPEGLikeCodec,
    JPEGLikeConfig,
    frames_from_videos,
    rate_distortion_curve,
)
from repro.data import build_pretrain_dataset
from repro.tasks import psnr

FRAME_SIZE = 32
NUM_SLOTS = 16


def main():
    videos = build_pretrain_dataset(num_clips=6, num_frames=4,
                                    frame_size=FRAME_SIZE, seed=0)
    frames = frames_from_videos(videos)

    print("== 1. JPEG-class codec: rate-distortion on a synthetic frame ==")
    points = rate_distortion_curve(frames[0], qualities=(10, 25, 50, 75, 90))
    print(format_text_table([point.as_dict() for point in points]))

    print("\n== 2. Learned compressive autoencoder (deep compression baseline) ==")
    model = CompressiveAutoencoder(AutoencoderConfig(patch_size=8, latent_dim=8,
                                                     hidden_dim=48))
    trainer = AutoencoderTrainer(model, lr=5e-3, epochs=10, batch_size=8, seed=0)
    history = trainer.fit(frames)
    reconstruction_psnr = trainer.evaluate_psnr(frames)
    autoencoder_ratio = model.measured_compression_ratio(frames)
    print(f"  training loss {history.losses[0]:.4f} -> {history.final_loss:.4f}"
          f" over {len(history.losses)} epochs")
    print(f"  reconstruction PSNR: {reconstruction_psnr:.2f} dB, "
          f"measured compression ratio: {autoencoder_ratio:.1f}x")

    print("\n== 3. Edge energy: digital compression vs in-sensor CE ==")
    rows = []
    jpeg_ratio = float(np.mean([point.compression_ratio for point in points]))
    for name, ratio in (("jpeg_like", jpeg_ratio),
                        ("autoencoder", autoencoder_ratio),
                        ("ideal_ratio_T", float(NUM_SLOTS))):
        for link in ("passive_wifi", "lora_backscatter"):
            comparison = DigitalCompressionEnergyModel(
                FRAME_SIZE, FRAME_SIZE, NUM_SLOTS,
                compression_ratio=ratio).compare_with_in_sensor_ce(link)
            rows.append({
                "digital_baseline": name,
                "link": link,
                "compression_ratio": ratio,
                "digital_total_uj": comparison.baseline.total * 1e6,
                "snappix_total_uj": comparison.snappix.total * 1e6,
                "ce_saving_factor": comparison.saving_factor,
            })
    print(format_text_table(rows))
    print("\nIn-sensor CE wins in every configuration because digital "
          "compression runs after read-out: it pays the full ADC/MIPI "
          "energy of every frame plus nJ/pixel for the encoder itself.")


if __name__ == "__main__":
    main()
