#!/usr/bin/env python
"""Pattern workshop: learn, inspect, compare, and serialise CE patterns.

Walks through the Sec. III pattern-design workflow a sensor integrator
would follow:

1. learn a decorrelated tile pattern on unlabelled clips,
2. compare it statistically against the task-agnostic baselines of
   Fig. 6 (exposure density, coded-pixel correlation, code diversity,
   pairwise Hamming separation),
3. render the learned pattern as text, and
4. save it to disk in the deployable bundle format and load it back.

Run with:  python examples/pattern_analysis.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import format_text_table
from repro.ce import (
    CEConfig,
    PatternBundle,
    coded_pixel_correlation,
    learn_decorrelated_pattern,
    load_pattern,
    make_pattern,
    pattern_to_text,
    save_pattern,
    summarize_pattern,
)
from repro.data import build_pretrain_dataset

NUM_SLOTS = 8
TILE_SIZE = 4
FRAME_SIZE = 16


def main():
    print("== 1. Learn a decorrelated pattern (Sec. III) ==")
    videos = build_pretrain_dataset(num_clips=32, num_frames=NUM_SLOTS,
                                    frame_size=FRAME_SIZE, seed=0)
    config = CEConfig(num_slots=NUM_SLOTS, tile_size=TILE_SIZE,
                      frame_height=FRAME_SIZE, frame_width=FRAME_SIZE)
    result = learn_decorrelated_pattern(videos, config, epochs=6, seed=0)
    learned = result.tile_pattern

    print("\n== 2. Compare against the Fig. 6 task-agnostic baselines ==")
    rng = np.random.default_rng(0)
    patterns = {"decorrelated": learned}
    for name in ("sparse_random", "random", "long_exposure", "short_exposure"):
        patterns[name] = make_pattern(name, NUM_SLOTS, TILE_SIZE, rng=rng)
    rows = []
    for name, pattern in patterns.items():
        summary = summarize_pattern(pattern)
        _, correlation, _ = coded_pixel_correlation(videos, pattern, TILE_SIZE)
        rows.append({
            "pattern": name,
            "correlation": correlation,
            "exposure_density": summary.exposure_density,
            "mean_hamming": summary.mean_pairwise_hamming,
            "code_diversity": summary.code_diversity,
        })
    print(format_text_table(rows))

    print("\n== 3. The learned pattern, slot by slot ==")
    print(pattern_to_text(learned))

    print("\n== 4. Save and reload the deployable pattern bundle ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "decorrelated_pattern.json"
        save_pattern(PatternBundle(pattern=learned, config=config,
                                   metadata={"epochs": 6, "clips": 32}), path)
        bundle = load_pattern(path)
        print(f"  saved to {path.name}, reloaded pattern shape "
              f"{bundle.pattern.shape}, metadata {bundle.metadata}")
        assert np.array_equal(bundle.pattern, learned)
    print("  round-trip OK")


if __name__ == "__main__":
    main()
