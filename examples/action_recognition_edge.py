#!/usr/bin/env python
"""Edge action recognition: the full SnapPix recipe vs a video baseline.

Reproduces the paper's main system comparison at example scale:

1. learn the decorrelated CE pattern on an unlabelled pre-training pool,
2. run the coded-image-to-video masked pre-training,
3. fine-tune the CE-optimized ViT for action recognition,
4. train a VideoMAE-ST-style *video* baseline on the same data, and
5. compare accuracy, inference throughput, and edge energy.

Run with:  python examples/action_recognition_edge.py
"""

import numpy as np

from repro.core import PipelineConfig, SnapPixSystem
from repro.data import build_dataset
from repro.energy import EdgeSensingScenario
from repro.models import build_model
from repro.tasks import ActionRecognitionTrainer, measure_inference_throughput


def train_snappix(config):
    system = SnapPixSystem(config)
    correlation = system.prepare_pattern()
    print(f"[snappix] learned pattern correlation: {correlation:.3f}")
    pretrain_loss = system.pretrain()
    print(f"[snappix] pre-training final loss:     {pretrain_loss:.4f}")
    metrics = system.train_action_recognition()
    print(f"[snappix] test accuracy:               {metrics['test_accuracy']:.3f}")
    print(f"[snappix] throughput:                  "
          f"{metrics['inference_per_second']:.1f} clips/s")
    return metrics


def train_video_baseline(config):
    dataset = build_dataset(config.dataset, num_frames=config.num_slots,
                            frame_size=config.frame_size,
                            train_clips_per_class=config.train_clips_per_class,
                            test_clips_per_class=config.test_clips_per_class,
                            seed=config.seed)
    model = build_model("videomae_st", num_classes=dataset.num_classes,
                        image_size=config.frame_size, num_frames=config.num_slots,
                        tile_size=config.tile_size, seed=config.seed)
    trainer = ActionRecognitionTrainer(model, dataset, sensor=None,
                                       epochs=config.finetune_epochs,
                                       batch_size=config.batch_size,
                                       seed=config.seed)
    trainer.fit(evaluate_every=0)
    accuracy = trainer.evaluate("test")
    throughput = measure_inference_throughput(model, dataset.test_videos[:1],
                                              batch_size=4, repeats=2)
    print(f"[videomae] test accuracy:              {accuracy:.3f}")
    print(f"[videomae] throughput:                 {throughput:.1f} clips/s")
    return {"test_accuracy": accuracy, "inference_per_second": throughput}


def main():
    config = PipelineConfig(dataset="ssv2", frame_size=16, num_slots=8,
                            tile_size=8, model_variant="tiny",
                            use_pretraining=True, pattern_epochs=5,
                            pretrain_epochs=2, finetune_epochs=6,
                            pretrain_clips=24, train_clips_per_class=6,
                            test_clips_per_class=3)

    print("== SnapPix (in-sensor CE compression + CE-optimized ViT) ==")
    snappix = train_snappix(config)

    print("\n== Video baseline (uncompressed 8-frame clips) ==")
    video = train_video_baseline(config)

    print("\n== Edge energy (per clip, paper geometry 112x112, T=16) ==")
    scenario = EdgeSensingScenario(112, 112, 16)
    for link in ("passive_wifi", "lora_backscatter"):
        comparison = scenario.edge_server(link)
        print(f"  {link:18s}: conventional {comparison.baseline.total * 1e6:9.3f} uJ  "
              f"snappix {comparison.snappix.total * 1e6:9.3f} uJ  "
              f"-> {comparison.saving_factor:.1f}x saving")

    print("\n== Summary ==")
    print(f"  SnapPix accuracy {snappix['test_accuracy']:.3f} vs "
          f"video baseline {video['test_accuracy']:.3f}, with "
          f"{snappix['inference_per_second'] / max(video['inference_per_second'], 1e-9):.1f}x "
          f"the inference throughput and 1/{config.num_slots} of the sensor read-out.")


if __name__ == "__main__":
    main()
